//! Block-level power model of the interface.
//!
//! Power on the FPGA decomposes into:
//!
//! * **static** leakage, always present (the paper's 50 µW floor);
//! * **clock-tree + gated-logic dynamic** power, proportional to the
//!   current global clock frequency — this is what recursive division
//!   attacks (`P_clk(m) = P_clk_full / m` at period multiplier `m`,
//!   zero while the ring oscillator sleeps);
//! * **per-event** switching energy (synchroniser, timestamp capture,
//!   FIFO push, I2S serialisation);
//! * **per-wake** transient energy of the oscillator restart.
//!
//! The two calibration anchors come straight from the paper: 50 µW with
//! no input and ≈4.5 mW at a 550 kevt/s spike rate (§5.2 / abstract).

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use aetr_sim::time::SimDuration;

use crate::units::{Energy, Power};

/// Architectural blocks of the interface (Fig. 3), for per-block power
/// attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Block {
    /// AER front-end: request monitor, synchroniser, address register,
    /// timestamp counter.
    FrontEnd,
    /// Ring oscillator, dividers, sampling FSM.
    ClockGenerator,
    /// The 9.2 kB SRAM FIFO.
    Buffer,
    /// I2S output interface.
    I2s,
    /// SPI configuration bus and register file.
    ConfigBus,
}

impl Block {
    /// All blocks, in display order.
    pub const ALL: [Block; 5] =
        [Block::FrontEnd, Block::ClockGenerator, Block::Buffer, Block::I2s, Block::ConfigBus];
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Block::FrontEnd => "aer-front-end",
            Block::ClockGenerator => "clock-generator",
            Block::Buffer => "aetr-buffer",
            Block::I2s => "i2s-interface",
            Block::ConfigBus => "config-bus",
        };
        f.write_str(s)
    }
}

/// Per-block calibration parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockParams {
    /// Share of the static leakage attributed to this block.
    pub static_fraction: f64,
    /// Share of the full-speed clock-tree/dynamic power attributed to
    /// this block.
    pub clock_fraction: f64,
    /// Switching energy this block spends per event.
    pub event_energy: Energy,
}

/// Clock activity summary consumed by the power model — produced by
/// the sampling engine (behavioral) or the DES power meter, kept as a
/// plain data type here so this crate stays independent of both.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ActivityInput {
    /// `(period multiplier, time spent)` at each clock division level.
    pub active: Vec<(u64, SimDuration)>,
    /// Time with the clock switched off.
    pub off: SimDuration,
    /// Ring-oscillator restarts.
    pub wake_count: u64,
    /// Events processed.
    pub event_count: u64,
}

impl ActivityInput {
    /// Total wall-clock span covered by this activity record.
    pub fn span(&self) -> SimDuration {
        self.active.iter().map(|&(_, d)| d).sum::<SimDuration>() + self.off
    }
}

/// The calibrated power model.
///
/// # Examples
///
/// ```
/// use aetr_power::model::{ActivityInput, PowerModel};
/// use aetr_sim::time::SimDuration;
///
/// let model = PowerModel::igloo_nano();
/// // Full-speed clock for 1 s, no events: the naïve baseline's power.
/// let activity = ActivityInput {
///     active: vec![(1, SimDuration::from_secs(1))],
///     ..ActivityInput::default()
/// };
/// let report = model.evaluate(&activity);
/// assert!((report.total.as_milliwatts() - 4.4).abs() < 0.2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Total static leakage.
    pub static_power: Power,
    /// Dynamic power with the clock at full speed (multiplier 1).
    pub clock_power_full: Power,
    /// Energy per ring-oscillator restart transient.
    pub wake_energy: Energy,
    /// Per-block parameter table.
    pub blocks: BTreeMap<Block, BlockParams>,
}

impl PowerModel {
    /// The model calibrated to the paper's IGLOO nano AGLN250
    /// measurements: 50 µW static, ≈4.5 mW total at 550 kevt/s
    /// (≈4.35 mW full-speed clock power + ≈180 pJ/event).
    pub fn igloo_nano() -> PowerModel {
        let mut blocks = BTreeMap::new();
        blocks.insert(
            Block::FrontEnd,
            BlockParams {
                static_fraction: 0.15,
                clock_fraction: 0.25,
                event_energy: Energy::from_picojoules(60.0),
            },
        );
        blocks.insert(
            Block::ClockGenerator,
            BlockParams {
                static_fraction: 0.20,
                clock_fraction: 0.35,
                event_energy: Energy::from_picojoules(10.0),
            },
        );
        blocks.insert(
            Block::Buffer,
            BlockParams {
                static_fraction: 0.40,
                clock_fraction: 0.20,
                event_energy: Energy::from_picojoules(70.0),
            },
        );
        blocks.insert(
            Block::I2s,
            BlockParams {
                static_fraction: 0.15,
                clock_fraction: 0.15,
                event_energy: Energy::from_picojoules(35.0),
            },
        );
        blocks.insert(
            Block::ConfigBus,
            BlockParams {
                static_fraction: 0.10,
                clock_fraction: 0.05,
                event_energy: Energy::from_picojoules(5.0),
            },
        );
        PowerModel {
            static_power: Power::from_microwatts(50.0),
            clock_power_full: Power::from_milliwatts(4.35),
            wake_energy: Energy::from_picojoules(250.0),
            blocks,
        }
    }

    /// Total per-event energy across blocks.
    pub fn event_energy(&self) -> Energy {
        self.blocks.values().map(|b| b.event_energy).sum()
    }

    /// Instantaneous power draw in a given clock state.
    ///
    /// `multiplier` is the current period multiplier of the sampling
    /// clock — `None` while the ring oscillator is off (sleep), where
    /// only static leakage remains; `Some(m)` contributes the
    /// frequency-proportional clock-tree power `P_clk_full / m`.
    /// Per-event and per-wake energies are impulses, not sustained
    /// draw, so they are excluded; this is the quantity the telemetry
    /// live sampler reports between events.
    ///
    /// # Panics
    ///
    /// Panics on `Some(0)` — a zero multiplier is not a clock state.
    pub fn instantaneous_power(&self, multiplier: Option<u64>) -> Power {
        match multiplier {
            None => self.static_power,
            Some(m) => {
                assert!(m > 0, "period multiplier must be positive");
                self.static_power + self.clock_power_full / m as f64
            }
        }
    }

    /// Evaluates average power and energy over an activity record.
    ///
    /// # Panics
    ///
    /// Panics if the activity record covers a zero span.
    pub fn evaluate(&self, activity: &ActivityInput) -> PowerReport {
        let span = activity.span();
        assert!(!span.is_zero(), "activity record covers no time");

        // Clock-tree/dynamic energy: frequency-proportional, so at
        // period multiplier m the power is P_full / m.
        let clock_energy: Energy =
            activity.active.iter().map(|&(m, d)| (self.clock_power_full / m as f64) * d).sum();
        let static_energy = self.static_power * span;
        let event_energy = self.event_energy() * activity.event_count as f64;
        let wake_energy = self.wake_energy * activity.wake_count as f64;

        let total_energy = static_energy + clock_energy + event_energy + wake_energy;
        let total = total_energy.over(span);

        let per_block = Block::ALL
            .iter()
            .map(|&b| {
                let p = &self.blocks[&b];
                let e = self.static_power * span * p.static_fraction
                    + clock_energy * p.clock_fraction
                    + p.event_energy * activity.event_count as f64
                    + if b == Block::ClockGenerator { wake_energy } else { Energy::ZERO };
                (b, e.over(span))
            })
            .collect();

        PowerReport {
            span,
            total,
            static_power: self.static_power,
            clock_power: clock_energy.over(span),
            event_power: (event_energy + wake_energy).over(span),
            total_energy,
            per_block,
        }
    }

    /// Validates that the per-block fractions sum to one.
    ///
    /// # Errors
    ///
    /// Returns the offending sums as `(static_sum, clock_sum)`.
    pub fn validate(&self) -> Result<(), (f64, f64)> {
        let s: f64 = self.blocks.values().map(|b| b.static_fraction).sum();
        let c: f64 = self.blocks.values().map(|b| b.clock_fraction).sum();
        if (s - 1.0).abs() < 1e-9 && (c - 1.0).abs() < 1e-9 {
            Ok(())
        } else {
            Err((s, c))
        }
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::igloo_nano()
    }
}

/// Power evaluation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Wall-clock span evaluated.
    pub span: SimDuration,
    /// Average total power.
    pub total: Power,
    /// Static component.
    pub static_power: Power,
    /// Average clock-tree/dynamic component.
    pub clock_power: Power,
    /// Average event + wake component.
    pub event_power: Power,
    /// Total energy consumed over the span.
    pub total_energy: Energy,
    /// Average power attributed to each block.
    pub per_block: Vec<(Block, Power)>,
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "total {} over {} (static {}, clock {}, events {})",
            self.total, self.span, self.static_power, self.clock_power, self.event_power
        )?;
        for (b, p) in &self.per_block {
            writeln!(f, "  {b:<16} {p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_speed(span: SimDuration) -> ActivityInput {
        ActivityInput { active: vec![(1, span)], ..ActivityInput::default() }
    }

    #[test]
    fn calibration_fractions_sum_to_one() {
        PowerModel::igloo_nano().validate().unwrap();
    }

    #[test]
    fn idle_clock_off_hits_static_floor() {
        let model = PowerModel::igloo_nano();
        let activity = ActivityInput { off: SimDuration::from_secs(1), ..ActivityInput::default() };
        let report = model.evaluate(&activity);
        assert!((report.total.as_microwatts() - 50.0).abs() < 1e-6);
    }

    #[test]
    fn full_speed_clock_matches_naive_baseline() {
        let model = PowerModel::igloo_nano();
        let report = model.evaluate(&full_speed(SimDuration::from_secs(1)));
        assert!((report.total.as_milliwatts() - 4.4).abs() < 0.05, "total {}", report.total);
    }

    #[test]
    fn noisy_environment_anchor_550kevts() {
        // 550 kevt/s with the clock pinned at full speed: the paper's
        // 4.5 mW anchor.
        let model = PowerModel::igloo_nano();
        let activity = ActivityInput {
            active: vec![(1, SimDuration::from_secs(1))],
            event_count: 550_000,
            ..ActivityInput::default()
        };
        let report = model.evaluate(&activity);
        let mw = report.total.as_milliwatts();
        assert!((4.3..=4.7).contains(&mw), "550 kevt/s power {mw} mW");
    }

    #[test]
    fn divided_clock_scales_power_down() {
        let model = PowerModel::igloo_nano();
        let full = model.evaluate(&full_speed(SimDuration::from_secs(1))).total;
        let div8 = model
            .evaluate(&ActivityInput {
                active: vec![(8, SimDuration::from_secs(1))],
                ..ActivityInput::default()
            })
            .total;
        // Dynamic component shrinks 8x; static stays.
        let expected = (full - model.static_power) / 8.0 + model.static_power;
        assert!(
            (div8.as_microwatts() - expected.as_microwatts()).abs() < 1.0,
            "div8 {div8} vs expected {expected}"
        );
    }

    #[test]
    fn per_block_powers_sum_to_total() {
        let model = PowerModel::igloo_nano();
        let activity = ActivityInput {
            active: vec![(1, SimDuration::from_ms(500)), (4, SimDuration::from_ms(300))],
            off: SimDuration::from_ms(200),
            wake_count: 10,
            event_count: 1_000,
        };
        let report = model.evaluate(&activity);
        let sum: Power = report.per_block.iter().map(|&(_, p)| p).sum();
        assert!(
            (sum.as_microwatts() - report.total.as_microwatts()).abs()
                < report.total.as_microwatts() * 1e-9,
            "blocks {} vs total {}",
            sum,
            report.total
        );
    }

    #[test]
    fn event_energy_adds_linear_term() {
        let model = PowerModel::igloo_nano();
        let span = SimDuration::from_secs(1);
        let base = model.evaluate(&full_speed(span)).total;
        let mut with_events = full_speed(span);
        with_events.event_count = 100_000;
        let loaded = model.evaluate(&with_events).total;
        let delta = loaded - base;
        let expected = model.event_energy() * 100_000.0;
        assert!(
            (delta.as_microwatts() - expected.over(span).as_microwatts()).abs() < 1e-6,
            "delta {delta}"
        );
    }

    #[test]
    fn display_contains_block_names() {
        let model = PowerModel::igloo_nano();
        let text = model.evaluate(&full_speed(SimDuration::from_ms(1))).to_string();
        assert!(text.contains("aer-front-end"));
        assert!(text.contains("clock-generator"));
    }

    #[test]
    #[should_panic(expected = "covers no time")]
    fn empty_activity_panics() {
        let _ = PowerModel::igloo_nano().evaluate(&ActivityInput::default());
    }
}
