//! Telemetry substrate for the AETR simulator.
//!
//! The paper's claim is *energy proportionality* — power and timestamp
//! error as a function of instantaneous event rate — which end-of-run
//! aggregates cannot show. This crate provides the four observability
//! primitives wired through the interface (DESIGN.md §11):
//!
//! 1. a handle-based [`registry::MetricsRegistry`] (counters, gauges,
//!    fixed-bucket [`histogram::FixedHistogram`]s) with hierarchical
//!    names matching the tracer scopes;
//! 2. typed [`span::SpanLog`] tracing over simulated time, exportable
//!    as Chrome `trace_event` JSON and foldable into per-component
//!    time-in-state residency;
//! 3. a live [`sampler::TimeSeries`] snapshotting rate / power /
//!    divider level / FIFO depth on a simulated-time cadence;
//! 4. wall-clock [`profile::Profiler`] hooks (events/sec, queue
//!    ops/sec) for bench attribution.
//!
//! Instrumentation is zero-cost when disabled: the collector created by
//! [`Telemetry::disabled`] answers `enabled() == false`, every record
//! method returns immediately, and the interface schedules no sampling
//! events — `AerToI2sInterface::run` output is bit-identical with and
//! without it (asserted by `tests/telemetry.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod json;
pub mod lineage;
pub mod profile;
pub mod registry;
pub mod sampler;
pub mod span;

use aetr_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::json::Json;
use crate::lineage::LineageLog;
use crate::profile::{Profiler, WallClockProfile};
use crate::registry::MetricsRegistry;
use crate::sampler::TimeSeries;
use crate::span::{SpanKind, SpanLog};

/// How (and whether) a run collects telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Master switch; when false the collector is a no-op sink.
    pub enabled: bool,
    /// Simulated-time cadence of the live sampler; `None` disables
    /// sampling while keeping metrics and spans.
    pub sample_cadence: Option<SimDuration>,
    /// Collect per-event [`lineage::EventLineage`] records (requires
    /// [`enabled`](Self::enabled); see DESIGN.md §14).
    pub lineage: bool,
}

impl TelemetryConfig {
    /// Telemetry fully off (the default for `run()`).
    pub fn disabled() -> TelemetryConfig {
        TelemetryConfig { enabled: false, sample_cadence: None, lineage: false }
    }

    /// Metrics + spans + sampler at the default 100 µs cadence.
    pub fn enabled() -> TelemetryConfig {
        TelemetryConfig {
            enabled: true,
            sample_cadence: Some(SimDuration::from_us(100)),
            lineage: false,
        }
    }

    /// Metrics + spans + sampler at a caller-chosen cadence.
    pub fn with_cadence(cadence: SimDuration) -> TelemetryConfig {
        TelemetryConfig { enabled: true, sample_cadence: Some(cadence), lineage: false }
    }

    /// Builder: additionally collect per-event lineage records.
    pub fn with_lineage(mut self) -> TelemetryConfig {
        self.lineage = true;
        self
    }

    /// Whether lineage records should be collected (master switch on
    /// *and* lineage requested).
    pub fn lineage_enabled(&self) -> bool {
        self.enabled && self.lineage
    }
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig::disabled()
    }
}

/// Live telemetry collector owned by a running interface.
///
/// All record methods check [`Telemetry::is_enabled`] first, so a
/// disabled collector costs one predictable branch per call site.
#[derive(Debug, Clone)]
pub struct Telemetry {
    config: TelemetryConfig,
    /// Metrics registry (public: callers pre-register handles).
    pub metrics: MetricsRegistry,
    /// Span log (public: callers open/close typed spans).
    pub spans: SpanLog,
    /// Live sampler output.
    pub series: TimeSeries,
    /// Per-event lineage records (filled only when
    /// [`TelemetryConfig::lineage_enabled`]).
    pub lineage: LineageLog,
    profiler: Option<Profiler>,
}

impl Telemetry {
    /// A no-op sink: nothing is recorded, nothing is allocated beyond
    /// the empty containers.
    pub fn disabled() -> Telemetry {
        Telemetry::new(TelemetryConfig::disabled())
    }

    /// Creates a collector for the given config and starts the
    /// wall-clock profiler when enabled.
    pub fn new(config: TelemetryConfig) -> Telemetry {
        let series = match config.sample_cadence {
            Some(c) if config.enabled => TimeSeries::new(c),
            _ => TimeSeries::default(),
        };
        Telemetry {
            config,
            metrics: MetricsRegistry::new(),
            spans: SpanLog::new(),
            series,
            lineage: LineageLog::new(),
            profiler: config.enabled.then(Profiler::start),
        }
    }

    /// Whether this collector records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.config.enabled
    }

    /// The configuration this collector was built with.
    pub fn config(&self) -> TelemetryConfig {
        self.config
    }

    /// Sampling cadence when live sampling is active.
    pub fn sample_cadence(&self) -> Option<SimDuration> {
        if self.config.enabled {
            self.config.sample_cadence
        } else {
            None
        }
    }

    /// Finalises the collector into an immutable snapshot.
    ///
    /// `sim_events` and `queue_ops` feed the wall-clock profile; a
    /// disabled collector yields [`TelemetrySnapshot::empty`].
    pub fn into_snapshot(self, sim_events: u64, queue_ops: u64) -> TelemetrySnapshot {
        if !self.config.enabled {
            return TelemetrySnapshot::empty();
        }
        let profile = self.profiler.as_ref().map(|p| p.finish(sim_events, queue_ops));
        TelemetrySnapshot {
            enabled: true,
            metrics: self.metrics,
            spans: self.spans,
            series: self.series,
            lineage: self.lineage,
            profile,
        }
    }
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::disabled()
    }
}

/// Immutable telemetry captured by one run; carried on
/// `InterfaceReport`.
///
/// Equality deliberately ignores the wall-clock [`WallClockProfile`]
/// (it is nondeterministic by nature); everything else — metrics,
/// spans, time series — is a pure function of the input train and
/// config, so snapshots participate in determinism tests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    enabled: bool,
    /// Final metric values.
    pub metrics: MetricsRegistry,
    /// Completed spans.
    pub spans: SpanLog,
    /// Live sampler time series.
    pub series: TimeSeries,
    /// Per-event lineage records (empty unless lineage collection was
    /// enabled).
    pub lineage: LineageLog,
    /// Wall-clock profile (absent when telemetry was disabled).
    pub profile: Option<WallClockProfile>,
}

impl PartialEq for TelemetrySnapshot {
    fn eq(&self, other: &TelemetrySnapshot) -> bool {
        // `profile` is wall-clock derived and intentionally excluded.
        self.enabled == other.enabled
            && self.metrics == other.metrics
            && self.spans == other.spans
            && self.series == other.series
            && self.lineage == other.lineage
    }
}

impl TelemetrySnapshot {
    /// The snapshot a disabled collector produces.
    pub fn empty() -> TelemetrySnapshot {
        TelemetrySnapshot {
            enabled: false,
            metrics: MetricsRegistry::new(),
            spans: SpanLog::new(),
            series: TimeSeries::default(),
            lineage: LineageLog::new(),
            profile: None,
        }
    }

    /// True when the run collected nothing (telemetry disabled).
    pub fn is_empty(&self) -> bool {
        !self.enabled
    }

    /// Sleep / divided / full-rate residency breakdown of the clock
    /// generator (see [`SpanLog::residency`]).
    pub fn clock_residency(&self) -> Vec<(&'static str, SimDuration)> {
        self.spans.residency(SpanKind::ClockState)
    }

    /// Full JSON export (the document validated by
    /// `schemas/telemetry.schema.json`).
    pub fn to_json(&self) -> Json {
        let counters = Json::Object(
            self.metrics
                .counters()
                .into_iter()
                .map(|(n, v)| (n.to_string(), Json::from(v)))
                .collect(),
        );
        let gauges = Json::Object(
            self.metrics
                .gauges()
                .into_iter()
                .map(|(n, v)| (n.to_string(), Json::from(v)))
                .collect(),
        );
        let histograms = Json::Object(
            self.metrics
                .histograms()
                .into_iter()
                .map(|(n, h)| {
                    let stats = h.stats();
                    (
                        n.to_string(),
                        Json::object([
                            (
                                "edges",
                                Json::Array(h.edges().iter().map(|e| Json::from(*e)).collect()),
                            ),
                            (
                                "counts",
                                Json::Array(
                                    h.bucket_counts().iter().map(|c| Json::from(*c)).collect(),
                                ),
                            ),
                            ("overflow", Json::from(h.overflow())),
                            ("non_finite", Json::from(h.non_finite())),
                            ("count", Json::from(stats.count())),
                            ("mean", Json::from(stats.mean())),
                            ("min", stats.min().map(Json::from).unwrap_or(Json::Null)),
                            ("max", stats.max().map(Json::from).unwrap_or(Json::Null)),
                        ]),
                    )
                })
                .collect(),
        );
        let mut by_kind: Vec<(String, Json)> = Vec::new();
        let mut residency: Vec<(String, Json)> = Vec::new();
        for kind in [
            SpanKind::Handshake,
            SpanKind::Wake,
            SpanKind::WatchdogRecovery,
            SpanKind::I2sFrame,
            SpanKind::ClockState,
        ] {
            by_kind.push((
                kind.label().to_string(),
                Json::from(self.spans.of_kind(kind).count() as u64),
            ));
            let folded = self.spans.residency(kind);
            if !folded.is_empty() {
                residency.push((
                    kind.label().to_string(),
                    Json::Object(
                        folded
                            .into_iter()
                            .map(|(name, d)| (name.to_string(), Json::from(d.as_ps())))
                            .collect(),
                    ),
                ));
            }
        }
        Json::object([
            ("version", Json::from(1_u64)),
            ("enabled", Json::from(self.enabled)),
            (
                "metrics",
                Json::object([
                    ("counters", counters),
                    ("gauges", gauges),
                    ("histograms", histograms),
                ]),
            ),
            (
                "spans",
                Json::object([
                    ("count", Json::from(self.spans.len() as u64)),
                    ("by_kind", Json::Object(by_kind.into_iter().collect())),
                    ("residency_ps", Json::Object(residency.into_iter().collect())),
                ]),
            ),
            ("timeseries", self.series.to_json()),
            ("profile", self.profile.map(|p| p.to_json()).unwrap_or(Json::Null)),
        ])
    }

    /// Prometheus text-exposition export of the metrics.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        fn sanitize(name: &str) -> String {
            name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
        }
        let mut out = String::new();
        for (name, v) in self.metrics.counters() {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, v) in self.metrics.gauges() {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, h) in self.metrics.histograms() {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            for (edge, cum) in h.edges().iter().zip(h.cumulative()) {
                let _ = writeln!(out, "{n}_bucket{{le=\"{edge}\"}} {cum}");
            }
            let total = h.count();
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {total}");
            let _ = writeln!(out, "{n}_sum {}", h.stats().mean() * total as f64);
            let _ = writeln!(out, "{n}_count {total}");
        }
        out
    }

    /// Chrome `trace_event` export of the span log, plus lineage flow
    /// events (arrival → detection → I2S) when lineage was collected.
    pub fn to_chrome_trace(&self) -> String {
        self.to_chrome_trace_named("aetr")
    }

    /// Chrome `trace_event` export with a caller-chosen process name,
    /// so traces from multiple runs stay distinguishable when merged in
    /// Perfetto.
    pub fn to_chrome_trace_named(&self, process: &str) -> String {
        self.spans.to_chrome_trace_with(process, &self.lineage.chrome_flow_events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aetr_sim::time::SimTime;

    #[test]
    fn disabled_collector_snapshots_empty() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        assert_eq!(tel.sample_cadence(), None);
        let snap = tel.into_snapshot(10, 20);
        assert!(snap.is_empty());
        assert!(snap.profile.is_none());
        assert_eq!(snap, TelemetrySnapshot::empty());
    }

    #[test]
    fn enabled_collector_carries_profile_but_ignores_it_in_eq() {
        let mut a = Telemetry::new(TelemetryConfig::enabled());
        let mut b = Telemetry::new(TelemetryConfig::enabled());
        for tel in [&mut a, &mut b] {
            let c = tel.metrics.counter("interface.events.captured");
            tel.metrics.inc(c, 5);
        }
        let sa = a.into_snapshot(5, 9);
        let sb = b.into_snapshot(5, 9);
        assert!(sa.profile.is_some());
        // Wall-clock numbers differ between the two runs, yet the
        // snapshots compare equal.
        assert_eq!(sa, sb);
    }

    #[test]
    fn json_export_validates_structure() {
        let mut tel = Telemetry::new(TelemetryConfig::with_cadence(SimDuration::from_us(10)));
        let c = tel.metrics.counter("interface.events.captured");
        tel.metrics.inc(c, 3);
        let g = tel.metrics.gauge("interface.fifo.occupancy");
        tel.metrics.set_gauge(g, 2.0);
        let h = tel.metrics.histogram("interface.fifo.depth", vec![1.0, 8.0]);
        tel.metrics.observe(h, 2.0);
        tel.spans.record(
            SpanKind::ClockState,
            "full-rate",
            SimTime::ZERO,
            SimTime::from_us(5),
            None,
        );
        tel.series.record(SimTime::from_us(10), 3, 1.5, 1, 0);
        let snap = tel.into_snapshot(3, 12);

        let text = snap.to_json().to_string();
        let parsed = json::parse(&text).expect("valid json");
        assert_eq!(parsed.get("version").unwrap().as_f64(), Some(1.0));
        let counters = parsed.get("metrics").unwrap().get("counters").unwrap();
        assert_eq!(counters.get("interface.events.captured").unwrap().as_f64(), Some(3.0));
        let res = parsed.get("spans").unwrap().get("residency_ps").unwrap();
        assert!(res.get("clock_state").unwrap().get("full-rate").is_some());
        assert_eq!(
            parsed.get("timeseries").unwrap().get("points").unwrap().as_array().unwrap().len(),
            1
        );
    }

    #[test]
    fn prometheus_export_has_types_and_buckets() {
        let mut tel = Telemetry::new(TelemetryConfig::enabled());
        let c = tel.metrics.counter("interface.clockgen.divisions");
        tel.metrics.inc(c, 7);
        let h = tel.metrics.histogram("interface.fifo.depth", vec![1.0, 8.0]);
        tel.metrics.observe(h, 0.5);
        tel.metrics.observe(h, 100.0);
        let text = tel.into_snapshot(0, 0).to_prometheus();
        assert!(text.contains("# TYPE interface_clockgen_divisions counter"));
        assert!(text.contains("interface_clockgen_divisions 7"));
        assert!(text.contains("interface_fifo_depth_bucket{le=\"1\"} 1"));
        assert!(text.contains("interface_fifo_depth_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("interface_fifo_depth_count 2"));
    }
}
