//! Minimal JSON value, writer, parser, and schema checker.
//!
//! The build sandbox vendors a no-op `serde` stub (see DESIGN.md
//! "Offline builds"), so every machine-readable export in this crate is
//! emitted and parsed by hand. This module keeps that honest: exporters
//! build a [`Json`] tree (or write strings directly and test them with
//! [`parse`]), and the CLI validates telemetry dumps against a
//! checked-in schema with [`validate`].

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document fragment.
///
/// Objects use a [`BTreeMap`] so serialisation order is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as f64; telemetry values fit).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Json>),
    /// A key-sorted object.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    /// JSON type name used in schema error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Number(_) => "number",
            Json::String(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    /// Builds an object from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Number(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Number(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::String(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::String(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Array(v)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Number(n) => {
                // JSON has no NaN/Infinity literals; represent them as
                // null so output stays parseable everywhere.
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    write!(f, "null")
                }
            }
            Json::String(s) => write_escaped(f, s),
            Json::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Object(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the offending input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing data after document", pos));
    }
    Ok(value)
}

fn err(message: &str, offset: usize) -> ParseError {
    ParseError { message: message.to_string(), offset }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(err(&format!("expected '{}'", c as char), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::String),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: Json,
) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(&format!("expected '{lit}'"), *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err("bad utf8", start))?;
    text.parse::<f64>().map(Json::Number).map_err(|_| err("invalid number", start))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err("truncated \\u escape", *pos))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err("bad \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err("bad \\u escape", *pos))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the full UTF-8 scalar starting here.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err("bad utf8 in string", *pos))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(err("expected ',' or ']'", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            _ => return Err(err("expected ',' or '}'", *pos)),
        }
    }
}

/// Validates `value` against a JSON-Schema-style `schema`.
///
/// Supports the subset used by `schemas/telemetry.schema.json`:
/// `type` (including `"integer"`), `required`, `properties`, `items`,
/// `minItems`, `enum` (strings), and `minimum`. Returns every violation
/// as a `path: message` string; an empty vector means the document
/// conforms.
pub fn validate(value: &Json, schema: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    validate_at(value, schema, "$", &mut errors);
    errors
}

fn type_matches(value: &Json, ty: &str) -> bool {
    match ty {
        "integer" => {
            matches!(value, Json::Number(n) if n.fract() == 0.0 && n.is_finite())
        }
        other => value.type_name() == other,
    }
}

fn validate_at(value: &Json, schema: &Json, path: &str, errors: &mut Vec<String>) {
    if let Some(ty) = schema.get("type").and_then(Json::as_str) {
        if !type_matches(value, ty) {
            errors.push(format!("{path}: expected {ty}, got {}", value.type_name()));
            return;
        }
    }
    if let Some(allowed) = schema.get("enum").and_then(Json::as_array) {
        if !allowed.iter().any(|a| a == value) {
            errors.push(format!("{path}: value not in enum"));
        }
    }
    if let Some(min) = schema.get("minimum").and_then(Json::as_f64) {
        if let Some(n) = value.as_f64() {
            if n < min {
                errors.push(format!("{path}: {n} below minimum {min}"));
            }
        }
    }
    if let Some(required) = schema.get("required").and_then(Json::as_array) {
        for key in required.iter().filter_map(Json::as_str) {
            if value.get(key).is_none() {
                errors.push(format!("{path}: missing required field '{key}'"));
            }
        }
    }
    if let Some(props) = schema.get("properties").and_then(Json::as_object) {
        for (key, sub) in props {
            if let Some(field) = value.get(key) {
                validate_at(field, sub, &format!("{path}.{key}"), errors);
            }
        }
    }
    if let Some(items) = value.as_array() {
        if let Some(min_items) = schema.get("minItems").and_then(Json::as_f64) {
            if (items.len() as f64) < min_items {
                errors
                    .push(format!("{path}: {} items, expected at least {min_items}", items.len()));
            }
        }
        if let Some(item_schema) = schema.get("items") {
            for (i, item) in items.iter().enumerate() {
                validate_at(item, item_schema, &format!("{path}[{i}]"), errors);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Json::object([
            ("name", Json::from("aetr")),
            ("n", Json::from(3_u64)),
            ("xs", Json::Array(vec![Json::from(1.5), Json::Null, Json::from(true)])),
        ]);
        let text = doc.to_string();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn escapes_and_unescapes_strings() {
        let doc = Json::from("line\n\"quoted\"\tbar\\slash");
        let text = doc.to_string();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Number(f64::NAN).to_string(), "null");
        assert_eq!(Json::Number(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} extra").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn parses_numbers_in_all_forms() {
        assert_eq!(parse("-0.5e2").unwrap(), Json::Number(-50.0));
        assert_eq!(parse("12").unwrap(), Json::Number(12.0));
    }

    #[test]
    fn schema_happy_path() {
        let schema = parse(
            r#"{"type":"object","required":["a","xs"],
                "properties":{"a":{"type":"integer","minimum":0},
                              "xs":{"type":"array","minItems":1,
                                    "items":{"type":"number"}}}}"#,
        )
        .unwrap();
        let good = parse(r#"{"a":3,"xs":[1,2.5]}"#).unwrap();
        assert!(validate(&good, &schema).is_empty());
    }

    #[test]
    fn schema_reports_violations_with_paths() {
        let schema = parse(
            r#"{"type":"object","required":["a"],
                "properties":{"a":{"type":"integer","minimum":0}}}"#,
        )
        .unwrap();
        let missing = parse("{}").unwrap();
        let errs = validate(&missing, &schema);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("missing required field 'a'"));

        let wrong = parse(r#"{"a":-1.5}"#).unwrap();
        let errs = validate(&wrong, &schema);
        assert!(errs.iter().any(|e| e.contains("expected integer")));
    }
}
