//! Frequency-locked loop: continuous background calibration of the
//! ring oscillator against a slow crystal reference.
//!
//! The [trim search](crate::trim) is a boot-time, one-shot
//! calibration; in the field, temperature keeps moving and a deployed
//! interface re-trims continuously: count ring edges over a
//! crystal-gated window, compare with the expected count, and nudge a
//! trim register. This module models that loop — including its
//! quantisation floor (one trim step) and its settling behaviour —
//! so the timestamp-accuracy impact of frequency drift between
//! re-trims can be bounded.
//!
//! The trim register here adjusts the effective stage delay in fine
//! steps (capacitive trim), which is how fabric oscillators are tuned
//! when inverter-pair granularity (~15 % at 13 stages) is too coarse.

use serde::{Deserialize, Serialize};

use aetr_sim::time::{Frequency, SimDuration};

/// FLL configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FllConfig {
    /// Target output frequency.
    pub target: Frequency,
    /// Gate window over which ring edges are counted (a 32 kHz crystal
    /// divided down: e.g. 1 ms).
    pub gate: SimDuration,
    /// Proportional gain: trim steps applied per count of error.
    pub gain: f64,
    /// Trim step as a fraction of the stage delay (fine capacitive
    /// trim, e.g. 0.2 %).
    pub trim_step: f64,
    /// Trim register range: `[-range, +range]` steps.
    pub trim_range: i32,
}

impl FllConfig {
    /// A 120 MHz target gated at 1 ms with 0.2 % trim steps over ±64.
    pub fn prototype() -> FllConfig {
        FllConfig {
            target: Frequency::from_mhz(120),
            gate: SimDuration::from_ms(1),
            gain: 0.25,
            trim_step: 0.002,
            trim_range: 64,
        }
    }

    /// Ring edges expected in one gate window at the target frequency.
    pub fn expected_count(&self) -> u64 {
        (self.target.as_hz_f64() * self.gate.as_secs_f64()).round() as u64
    }
}

impl Default for FllConfig {
    fn default() -> Self {
        Self::prototype()
    }
}

/// The frequency-locked loop state.
///
/// Drive it once per gate window with the measured edge count; read
/// back the trim factor to apply to the oscillator's stage delay.
///
/// # Examples
///
/// ```
/// use aetr_clockgen::fll::{Fll, FllConfig};
///
/// let mut fll = Fll::new(FllConfig::prototype());
/// // The ring runs 5% slow: fewer edges than expected.
/// let slow_count = (fll.config().expected_count() as f64 * 0.95) as u64;
/// fll.update(slow_count);
/// // The loop trims the delay down (factor < 1 speeds the ring up).
/// assert!(fll.delay_factor() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fll {
    config: FllConfig,
    trim: i32,
    updates: u64,
    locked_streak: u32,
}

impl Fll {
    /// Creates the loop at trim zero.
    ///
    /// # Panics
    ///
    /// Panics on non-positive gain, trim step, or an empty gate.
    pub fn new(config: FllConfig) -> Fll {
        assert!(config.gain > 0.0, "gain must be positive");
        assert!(config.trim_step > 0.0, "trim step must be positive");
        assert!(!config.gate.is_zero(), "gate window must be non-zero");
        assert!(config.trim_range > 0, "trim range must be positive");
        Fll { config, trim: 0, updates: 0, locked_streak: 0 }
    }

    /// The configuration.
    pub fn config(&self) -> &FllConfig {
        &self.config
    }

    /// Current trim register value (steps).
    pub fn trim(&self) -> i32 {
        self.trim
    }

    /// Multiplicative factor to apply to the oscillator's stage delay:
    /// positive trim slows the ring (longer delay), negative speeds it.
    pub fn delay_factor(&self) -> f64 {
        1.0 + self.trim as f64 * self.config.trim_step
    }

    /// Feeds one gate-window measurement; returns the new trim.
    ///
    /// Too few edges (ring slow) → negative trim movement (shorter
    /// delay); too many → positive.
    pub fn update(&mut self, measured_count: u64) -> i32 {
        self.updates += 1;
        let expected = self.config.expected_count() as f64;
        let error = measured_count as f64 - expected;
        // Relative error times steps-per-unit: one trim step changes
        // the count by roughly trim_step * expected.
        let steps = self.config.gain * error / (self.config.trim_step * expected);
        let delta = steps.round() as i32;
        self.trim = (self.trim + delta).clamp(-self.config.trim_range, self.config.trim_range);
        if delta == 0 {
            self.locked_streak += 1;
        } else {
            self.locked_streak = 0;
        }
        self.trim
    }

    /// `true` once the loop has held the same trim for three windows.
    pub fn is_locked(&self) -> bool {
        self.locked_streak >= 3
    }

    /// Gate windows processed.
    pub fn updates(&self) -> u64 {
        self.updates
    }
}

/// Simulates the closed loop against an oscillator whose *untrimmed*
/// frequency is `actual`: each window, the FLL measures
/// `actual / delay_factor` edges and updates. Returns the relative
/// frequency error after `windows` iterations.
pub fn settle(config: FllConfig, actual: Frequency, windows: u32) -> (Fll, f64) {
    let mut fll = Fll::new(config);
    for _ in 0..windows {
        let effective_hz = actual.as_hz_f64() / fll.delay_factor();
        let count = (effective_hz * config.gate.as_secs_f64()).round() as u64;
        fll.update(count);
    }
    let final_hz = actual.as_hz_f64() / fll.delay_factor();
    let err = (final_hz - config.target.as_hz_f64()).abs() / config.target.as_hz_f64();
    (fll, err)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_target_ring_stays_untouched() {
        let cfg = FllConfig::prototype();
        let (fll, err) = settle(cfg, Frequency::from_mhz(120), 10);
        assert_eq!(fll.trim(), 0);
        assert!(err < 1e-6);
        assert!(fll.is_locked());
    }

    /// The loop stops correcting once the per-window step rounds to
    /// zero: residual error is bounded by the deadband
    /// `trim_step / (2·gain)` plus half a trim step.
    fn quantisation_floor(cfg: &FllConfig) -> f64 {
        cfg.trim_step / (2.0 * cfg.gain) + cfg.trim_step
    }

    #[test]
    fn slow_ring_is_pulled_to_target() {
        // 5% slow (hot corner): the loop converges to the quantisation
        // floor of the trim DAC.
        let cfg = FllConfig::prototype();
        let (fll, err) = settle(cfg, Frequency::from_mhz(114), 40);
        assert!(err < quantisation_floor(&cfg), "settled error {err}");
        assert!(fll.trim() < 0, "slow ring needs negative (shorter-delay) trim");
        assert!(fll.is_locked());
    }

    #[test]
    fn fast_ring_is_pulled_down() {
        let cfg = FllConfig::prototype();
        let (fll, err) = settle(cfg, Frequency::from_mhz(126), 40);
        assert!(err < quantisation_floor(&cfg), "settled error {err}");
        assert!(fll.trim() > 0);
    }

    #[test]
    fn drift_beyond_trim_range_clamps() {
        // 30% slow exceeds the ±64 × 0.2% = ±12.8% authority: the loop
        // rails at the clamp without oscillating.
        let cfg = FllConfig::prototype();
        let (fll, err) = settle(cfg, Frequency::from_mhz(84), 60);
        assert_eq!(fll.trim(), -cfg.trim_range);
        assert!(err > 0.1, "error remains, honestly reported: {err}");
    }

    #[test]
    fn lock_is_reported_only_after_stability() {
        let cfg = FllConfig::prototype();
        let mut fll = Fll::new(cfg);
        let slow = (cfg.expected_count() as f64 * 0.97) as u64;
        fll.update(slow);
        assert!(!fll.is_locked(), "first correction cannot be locked");
    }

    #[test]
    fn settling_is_fast() {
        // A 3% step disturbance settles in a handful of windows.
        let cfg = FllConfig::prototype();
        let mut fll = Fll::new(cfg);
        let actual = Frequency::from_mhz(116);
        let mut settled_at = None;
        for w in 0..30u32 {
            let effective = actual.as_hz_f64() / fll.delay_factor();
            let count = (effective * cfg.gate.as_secs_f64()).round() as u64;
            fll.update(count);
            if fll.is_locked() && settled_at.is_none() {
                settled_at = Some(w);
            }
        }
        let settled = settled_at.expect("loop must lock");
        assert!(settled < 20, "locked after {settled} windows");
    }

    #[test]
    #[should_panic(expected = "gain")]
    fn zero_gain_panics() {
        let _ = Fll::new(FllConfig { gain: 0.0, ..FllConfig::prototype() });
    }
}
