//! The downstream microcontroller's view of the link.
//!
//! The prototype streams AETR over I2S into an STM32-L476; this module
//! models that consumer: decode the frames, rebuild the spike timeline
//! from the explicit deltas, and quantify how faithfully the original
//! sensor timing survived the whole interface — the end-to-end
//! "time-to-information" contract.

use serde::{Deserialize, Serialize};

use aetr_aer::spike::SpikeTrain;
use aetr_sim::time::{SimDuration, SimTime};

use crate::aetr_format::AetrEvent;
use crate::i2s::{decode_frames, I2sStream};
use crate::quantizer::reconstruct_train;

/// The MCU-side receiver: an I2S peripheral plus the AETR decoder.
///
/// # Examples
///
/// ```
/// use aetr::aetr_format::{AetrEvent, Timestamp};
/// use aetr::i2s::{I2sConfig, I2sTransmitter};
/// use aetr::mcu::McuReceiver;
/// use aetr_aer::address::Address;
/// use aetr_sim::time::{SimDuration, SimTime};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut tx = I2sTransmitter::new(I2sConfig::prototype());
/// let ev = AetrEvent::new(Address::new(9)?, Timestamp::from_ticks(150));
/// tx.send_pair(SimTime::ZERO, ev, None)?;
///
/// let rx = McuReceiver::new(SimDuration::from_ns(66));
/// let train = rx.receive(tx.stream());
/// assert_eq!(train.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct McuReceiver {
    base_period: SimDuration,
    saturation_ticks: Option<u64>,
}

impl McuReceiver {
    /// Creates a receiver that interprets timestamps in units of
    /// `base_period` (the interface's `T_min`, which the host reads
    /// over SPI at setup).
    pub fn new(base_period: SimDuration) -> McuReceiver {
        McuReceiver { base_period, saturation_ticks: None }
    }

    /// Tells the receiver the interface's timestamp saturation value
    /// (`θ_div · (2^(N_div+1) − 1)` in `T_min` ticks — derivable from
    /// the `ThetaDiv`/`NDiv` registers the host reads over SPI).
    /// Required for [`receive_anchored`](Self::receive_anchored) to
    /// recognise saturated gaps.
    pub fn with_saturation(mut self, ticks: u64) -> McuReceiver {
        self.saturation_ticks = Some(ticks);
        self
    }

    /// Decodes the raw AETR events from a stream.
    pub fn decode(&self, stream: &I2sStream) -> Vec<AetrEvent> {
        decode_frames(stream)
    }

    /// Decodes and reconstructs the spike timeline (relative to time
    /// zero — absolute time is unknowable from deltas alone, and
    /// irrelevant for batch processing).
    pub fn receive(&self, stream: &I2sStream) -> SpikeTrain {
        reconstruct_train(&self.decode(stream), self.base_period, SimTime::ZERO)
    }

    /// Decodes and reconstructs with *arrival anchoring*: fine
    /// structure comes from the AETR deltas, but whenever a timestamp
    /// is saturated (the true gap exceeded the measurable range) the
    /// timeline re-anchors at the carrying I2S frame's arrival time —
    /// the MCU's own clock. This is how a real consumer recovers
    /// wall-clock placement across long silences, at batch-latency
    /// resolution.
    ///
    /// The result is clamped monotone (an anchor can never move time
    /// backwards past already-placed events).
    pub fn receive_anchored(&self, stream: &I2sStream) -> SpikeTrain {
        let mut spikes = Vec::new();
        let mut t = SimTime::ZERO;
        for frame in stream.frames() {
            for event in frame.events() {
                let delta = event.timestamp.to_interval(self.base_period);
                let by_delta = t.saturating_add(delta);
                // Saturated delta: the true gap is unknown but the
                // frame arrived *now*; trust the local clock. Without a
                // configured saturation value, fall back to the field
                // maximum (only full-width saturation is detectable).
                let sat = self.saturation_ticks.unwrap_or(crate::aetr_format::TIMESTAMP_MAX as u64);
                t = if event.timestamp.ticks() as u64 >= sat {
                    frame.start.max(t)
                } else {
                    by_delta
                };
                spikes.push(aetr_aer::spike::Spike::new(t, event.addr));
            }
        }
        SpikeTrain::from_sorted(spikes).expect("anchoring preserves monotonicity")
    }
}

/// End-to-end fidelity report between the sensor's spike train and the
/// MCU's reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FidelityReport {
    /// Events the sensor emitted.
    pub sent: usize,
    /// Events the MCU received.
    pub received: usize,
    /// Mean relative ISI error over comparable intervals.
    pub mean_isi_error: f64,
    /// Worst relative ISI error.
    pub max_isi_error: f64,
}

impl FidelityReport {
    /// Compares the ISI sequences of the original and reconstructed
    /// trains (pairwise over the common prefix of intervals), using
    /// the bounded relative error `|r − t| / max(r, t)` — the same
    /// metric as [`IsiErrorSample::relative_error`].
    ///
    /// Zero-length interval pairs are skipped — they carry no timing
    /// information to preserve.
    ///
    /// [`IsiErrorSample::relative_error`]:
    ///     crate::quantizer::IsiErrorSample::relative_error
    pub fn compare(original: &SpikeTrain, reconstructed: &SpikeTrain) -> FidelityReport {
        let mut errors = Vec::new();
        for (t, r) in original.inter_spike_intervals().zip(reconstructed.inter_spike_intervals()) {
            let truth = t.as_secs_f64();
            let rec = r.as_secs_f64();
            let denom = truth.max(rec);
            if denom > 0.0 {
                errors.push((rec - truth).abs() / denom);
            }
        }
        let mean =
            if errors.is_empty() { 0.0 } else { errors.iter().sum::<f64>() / errors.len() as f64 };
        let max = errors.iter().cloned().fold(0.0f64, f64::max);
        FidelityReport {
            sent: original.len(),
            received: reconstructed.len(),
            mean_isi_error: mean,
            max_isi_error: max,
        }
    }

    /// The paper's headline accuracy metric: `1 − mean error`, "above
    /// 97%" in the active region.
    pub fn accuracy(&self) -> f64 {
        1.0 - self.mean_isi_error
    }

    /// Fraction of events lost in transit.
    pub fn loss_ratio(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            1.0 - self.received as f64 / self.sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aetr_format::Timestamp;
    use crate::i2s::{I2sConfig, I2sTransmitter};
    use crate::quantizer::{quantize_train, QuantizerOutput};
    use aetr_aer::generator::{PoissonGenerator, SpikeSource};
    use aetr_clockgen::config::ClockGenConfig;

    fn send_all(out: &QuantizerOutput) -> I2sStream {
        let mut tx = I2sTransmitter::new(I2sConfig::prototype());
        let events = out.events();
        let mut t = SimTime::ZERO;
        for pair in events.chunks(2) {
            t = tx.send_pair(t, pair[0], pair.get(1).copied()).unwrap();
        }
        tx.into_stream()
    }

    #[test]
    fn end_to_end_active_region_accuracy_above_97() {
        let train = PoissonGenerator::new(150_000.0, 64, 21).generate(SimTime::from_ms(100));
        let out = quantize_train(&ClockGenConfig::prototype(), &train, SimTime::from_ms(100));
        let stream = send_all(&out);
        let rx = McuReceiver::new(out.base_period);
        let rebuilt = rx.receive(&stream);
        let report = FidelityReport::compare(&train, &rebuilt);
        assert_eq!(report.sent, report.received);
        assert_eq!(report.loss_ratio(), 0.0);
        assert!(report.accuracy() > 0.97, "accuracy {}", report.accuracy());
    }

    #[test]
    fn decode_preserves_event_identity() {
        let train = PoissonGenerator::new(50_000.0, 100, 5).generate(SimTime::from_ms(10));
        let out = quantize_train(&ClockGenConfig::prototype(), &train, SimTime::from_ms(10));
        let stream = send_all(&out);
        let rx = McuReceiver::new(out.base_period);
        let decoded = rx.decode(&stream);
        assert_eq!(decoded, out.events());
    }

    #[test]
    fn saturated_events_survive_the_carrier() {
        let train = PoissonGenerator::new(100.0, 4, 1).generate(SimTime::from_secs(1));
        let out = quantize_train(&ClockGenConfig::prototype(), &train, SimTime::from_secs(1));
        let stream = send_all(&out);
        let decoded = McuReceiver::new(out.base_period).decode(&stream);
        // Saturated at the counter's natural maximum (960 ticks for
        // θ=64, N=3), not the field marker.
        let sat_ticks = decoded.iter().filter(|e| e.timestamp.ticks() == 960).count();
        assert!(sat_ticks > 0, "expected saturated timestamps");
        let _ = Timestamp::SATURATED; // field-level saturation tested in aetr_format
    }

    #[test]
    fn anchored_reception_recovers_wall_clock_gaps() {
        use crate::interface::{AerToI2sInterface, InterfaceConfig};
        use aetr_aer::generator::{RegularGenerator, SpikeSource};

        // Two bursts separated by 200 ms of silence (far beyond the
        // 64 µs measurable range). Delta-only reconstruction collapses
        // the gap; anchored reconstruction restores it at batch
        // resolution.
        let burst1 = RegularGenerator::from_rate(100_000.0, 4).generate(SimTime::from_ms(2));
        let burst2: SpikeTrain = RegularGenerator::from_rate(100_000.0, 4)
            .generate(SimTime::from_ms(2))
            .iter()
            .map(|s| {
                aetr_aer::spike::Spike::new(
                    s.time.saturating_add(SimDuration::from_ms(200)),
                    s.addr,
                )
            })
            .collect();
        let train = burst1.merge(&burst2);
        // A shallow watermark so each burst ships promptly — arrival
        // anchoring is only as good as the batching latency.
        let config = InterfaceConfig {
            fifo: crate::fifo::FifoConfig { watermark: 32, ..crate::fifo::FifoConfig::prototype() },
            ..InterfaceConfig::prototype()
        };
        let interface = AerToI2sInterface::new(config).expect("valid config");
        let report = interface.run(&train, SimTime::from_ms(250));
        let mcu =
            McuReceiver::new(interface.config().clock.base_sampling_period()).with_saturation(960); // θ=64, N=3: 64·(2^4−1)

        let plain = mcu.receive(&report.i2s);
        let anchored = mcu.receive_anchored(&report.i2s);
        let plain_span = plain.last_time().unwrap() - plain.first_time().unwrap();
        let anchored_span = anchored.last_time().unwrap() - anchored.first_time().unwrap();
        assert!(
            plain_span < SimDuration::from_ms(10),
            "delta-only reconstruction compresses the gap: {plain_span}"
        );
        assert!(
            anchored_span > SimDuration::from_ms(150),
            "anchored reconstruction restores the gap: {anchored_span}"
        );
        // Monotone, and same event count.
        assert_eq!(anchored.len(), plain.len());
    }

    #[test]
    fn fidelity_report_on_identical_trains_is_perfect() {
        let train = PoissonGenerator::new(10_000.0, 8, 2).generate(SimTime::from_ms(20));
        let report = FidelityReport::compare(&train, &train);
        assert_eq!(report.mean_isi_error, 0.0);
        assert_eq!(report.accuracy(), 1.0);
        assert_eq!(report.loss_ratio(), 0.0);
    }

    #[test]
    fn empty_streams_compare_cleanly() {
        let report = FidelityReport::compare(&SpikeTrain::new(), &SpikeTrain::new());
        assert_eq!(report.sent, 0);
        assert_eq!(report.loss_ratio(), 0.0);
        assert_eq!(report.mean_isi_error, 0.0);
    }
}
