//! LFSR-based pseudo-random spike generator.
//!
//! Section 5.2 of the paper: *"We added to the design a variable rate
//! pseudo-random spike generator based on a linear-feedback shift
//! register to feed the system with a fixed rate spike stream and
//! measure power directly on the FPGA board."*
//!
//! This module models that stimulus block: a Galois LFSR supplies both
//! the event addresses and a bounded pseudo-random jitter around the
//! nominal inter-event interval, producing a fixed-rate but
//! non-periodic stream — exactly what a power sweep wants (periodic
//! streams would beat against the divided clock and bias the
//! measurement).

use serde::{Deserialize, Serialize};

use aetr_sim::time::{SimDuration, SimTime};

use crate::address::Address;
use crate::spike::Spike;

use super::SpikeSource;

/// A 32-bit Galois linear-feedback shift register (taps 32, 30, 26, 25;
/// maximal-length polynomial `0xA3000000` in Galois form).
///
/// # Examples
///
/// ```
/// use aetr_aer::generator::Lfsr;
///
/// let mut lfsr = Lfsr::new(0xACE1);
/// let a = lfsr.next_bits(10);
/// let b = lfsr.next_bits(10);
/// assert!(a < 1024 && b < 1024);
/// assert_ne!((a, b), (0, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lfsr {
    state: u32,
}

impl Lfsr {
    /// Galois feedback mask for taps (32, 30, 26, 25).
    const TAPS: u32 = 0xA300_0000;

    /// Creates an LFSR. A zero seed (the lock-up state) is mapped to 1.
    pub fn new(seed: u32) -> Lfsr {
        Lfsr { state: if seed == 0 { 1 } else { seed } }
    }

    /// Advances one step and returns the output bit.
    pub fn next_bit(&mut self) -> bool {
        let out = self.state & 1 != 0;
        self.state >>= 1;
        if out {
            self.state ^= Self::TAPS;
        }
        out
    }

    /// Gathers `n` successive output bits into the low bits of a `u32`
    /// (first bit is the LSB).
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    pub fn next_bits(&mut self, n: u32) -> u32 {
        assert!(n <= 32, "cannot gather more than 32 bits, asked for {n}");
        let mut v = 0;
        for i in 0..n {
            v |= (self.next_bit() as u32) << i;
        }
        v
    }

    /// Current register state (never zero).
    pub fn state(&self) -> u32 {
        self.state
    }
}

/// Fixed-nominal-rate spike generator driven by an [`Lfsr`], modelling
/// the paper's on-FPGA stimulus block for the Fig. 8 power sweep.
///
/// Each inter-event interval is the nominal period `1 / rate` modulated
/// by a pseudo-random factor in `[1 - jitter, 1 + jitter]` drawn from
/// the LFSR, so the long-run rate is exact while short-term arrivals
/// are uncorrelated with the sampling clock.
///
/// # Examples
///
/// ```
/// use aetr_aer::generator::{LfsrGenerator, SpikeSource};
/// use aetr_sim::time::SimTime;
///
/// let mut gen = LfsrGenerator::new(550_000.0, 0xBEEF);
/// let train = gen.generate(SimTime::from_ms(10));
/// let rate = train.mean_rate();
/// assert!((rate - 550_000.0).abs() / 550_000.0 < 0.02);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LfsrGenerator {
    nominal_period: SimDuration,
    jitter: f64,
    lfsr: Lfsr,
    now: SimTime,
    /// Running error accumulator (ps) keeping the long-run rate exact
    /// despite per-interval jitter rounding.
    drift_ps: i64,
}

impl LfsrGenerator {
    /// Default jitter amplitude: ±50 % of the nominal period.
    pub const DEFAULT_JITTER: f64 = 0.5;

    /// Creates a generator with the given nominal rate (events per
    /// second) and LFSR seed, using [`Self::DEFAULT_JITTER`].
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not strictly positive and finite.
    pub fn new(rate_hz: f64, seed: u32) -> LfsrGenerator {
        Self::with_jitter(rate_hz, Self::DEFAULT_JITTER, seed)
    }

    /// Creates a generator with an explicit jitter amplitude in
    /// `[0, 0.95]` (fraction of the nominal period).
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not strictly positive and finite or the
    /// jitter is out of range.
    pub fn with_jitter(rate_hz: f64, jitter: f64, seed: u32) -> LfsrGenerator {
        assert!(
            rate_hz.is_finite() && rate_hz > 0.0,
            "LFSR generator rate must be positive and finite, got {rate_hz}"
        );
        assert!((0.0..=0.95).contains(&jitter), "jitter must be in [0, 0.95], got {jitter}");
        LfsrGenerator {
            nominal_period: SimDuration::from_secs_f64(1.0 / rate_hz),
            jitter,
            lfsr: Lfsr::new(seed),
            now: SimTime::ZERO,
            drift_ps: 0,
        }
    }

    /// The nominal inter-event period.
    pub fn nominal_period(&self) -> SimDuration {
        self.nominal_period
    }
}

impl SpikeSource for LfsrGenerator {
    fn next_spike(&mut self) -> Option<Spike> {
        // 16 LFSR bits -> uniform factor in [1 - jitter, 1 + jitter].
        let raw = self.lfsr.next_bits(16) as f64 / 65_535.0; // [0, 1]
        let factor = 1.0 + self.jitter * (2.0 * raw - 1.0);
        let nominal = self.nominal_period.as_ps() as i64;
        let jittered = (nominal as f64 * factor).round() as i64;
        // Correct accumulated drift so the mean interval stays nominal.
        let correction = self.drift_ps.clamp(-nominal / 2, nominal / 2);
        let interval = (jittered - correction).max(1);
        self.drift_ps += interval - nominal;
        self.now = self.now.saturating_add(SimDuration::from_ps(interval as u64));
        let addr = Address::from_raw_masked(self.lfsr.next_bits(10) as u16);
        Some(Spike::new(self.now, addr))
    }
}

#[cfg(test)]
mod tests {
    use super::super::assert_time_ordered;
    use super::*;

    #[test]
    fn lfsr_is_maximal_length_like() {
        // The sequence must not repeat in a short window and never hits 0.
        let mut lfsr = Lfsr::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100_000 {
            assert_ne!(lfsr.state(), 0);
            seen.insert(lfsr.state());
            lfsr.next_bit();
        }
        assert_eq!(seen.len(), 100_000, "states repeated too early for a maximal LFSR");
    }

    #[test]
    fn zero_seed_is_remapped() {
        assert_eq!(Lfsr::new(0).state(), 1);
    }

    #[test]
    fn bit_balance_is_roughly_even() {
        let mut lfsr = Lfsr::new(0xDEAD_BEEF);
        let ones: u32 = (0..10_000).map(|_| lfsr.next_bit() as u32).sum();
        assert!((4_500..5_500).contains(&ones), "bit bias: {ones}/10000 ones");
    }

    #[test]
    fn long_run_rate_is_exact() {
        for &rate in &[1_000.0, 10_000.0, 550_000.0, 800_000.0] {
            let mut gen = LfsrGenerator::new(rate, 0x1234);
            let train = gen.generate(SimTime::from_ms(200));
            let measured = train.mean_rate();
            let rel = (measured - rate).abs() / rate;
            assert!(rel < 0.01, "rate {rate}: measured {measured}");
        }
    }

    #[test]
    fn intervals_are_jittered_not_periodic() {
        let mut gen = LfsrGenerator::new(100_000.0, 42);
        let train = gen.generate(SimTime::from_ms(10));
        let isis: std::collections::HashSet<u64> =
            train.inter_spike_intervals().map(|d| d.as_ps()).collect();
        assert!(isis.len() > 100, "expected diverse intervals, got {}", isis.len());
    }

    #[test]
    fn zero_jitter_is_periodic() {
        let mut gen = LfsrGenerator::with_jitter(100_000.0, 0.0, 42);
        let train = gen.generate(SimTime::from_ms(1));
        let isis: std::collections::HashSet<u64> =
            train.inter_spike_intervals().map(|d| d.as_ps()).collect();
        assert_eq!(isis.len(), 1, "zero jitter must be exactly periodic");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = LfsrGenerator::new(50_000.0, 7).generate(SimTime::from_ms(20));
        let b = LfsrGenerator::new(50_000.0, 7).generate(SimTime::from_ms(20));
        assert_eq!(a, b);
        assert_time_ordered(&a);
    }

    #[test]
    #[should_panic(expected = "jitter")]
    fn excessive_jitter_panics() {
        let _ = LfsrGenerator::with_jitter(1_000.0, 0.99, 1);
    }
}
