//! Battery-life projection.
//!
//! The paper's motivation is IoT edge nodes; the practical question a
//! deployment asks is "how long does my coin cell last at my sensor's
//! duty cycle?". This module turns the power model's outputs into
//! lifetimes, including mixed activity profiles (e.g. 1 % noisy /
//! 99 % silent).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::units::Power;

/// A battery, described by its usable energy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    /// Usable energy in milliwatt-hours.
    pub capacity_mwh: f64,
}

impl Battery {
    /// A CR2032 lithium coin cell: ~225 mAh at 3 V ≈ 675 mWh, derated
    /// to ~600 mWh usable.
    pub fn cr2032() -> Battery {
        Battery { capacity_mwh: 600.0 }
    }

    /// Two AA alkaline cells: ~2500 mAh at 3 V ≈ 7.5 Wh, derated to
    /// 6000 mWh usable.
    pub fn two_aa() -> Battery {
        Battery { capacity_mwh: 6_000.0 }
    }

    /// Lifetime in hours at a constant draw.
    ///
    /// # Panics
    ///
    /// Panics on zero power (a lifetime is then unbounded; decide that
    /// at the call site).
    pub fn lifetime_hours(&self, draw: Power) -> f64 {
        let mw = draw.as_milliwatts();
        assert!(mw > 0.0, "zero draw has unbounded lifetime");
        self.capacity_mwh / mw
    }

    /// Lifetime in days at a constant draw.
    ///
    /// # Panics
    ///
    /// Panics on zero power.
    pub fn lifetime_days(&self, draw: Power) -> f64 {
        self.lifetime_hours(draw) / 24.0
    }
}

/// A duty-cycled activity profile: fractions of time spent at each
/// average power level.
///
/// # Examples
///
/// ```
/// use aetr_power::battery::{Battery, DutyProfile};
/// use aetr_power::units::Power;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // 1% of the time in a noisy environment, 99% silent.
/// let profile = DutyProfile::new(vec![
///     (0.01, Power::from_milliwatts(4.5)),
///     (0.99, Power::from_microwatts(50.0)),
/// ])?;
/// let days = Battery::cr2032().lifetime_days(profile.average());
/// assert!(days > 200.0, "coin cell lasts {days:.0} days");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DutyProfile {
    phases: Vec<(f64, Power)>,
}

/// Error constructing a duty profile whose fractions do not sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileSumError {
    /// The actual sum of fractions.
    pub sum: f64,
}

impl fmt::Display for ProfileSumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "duty fractions sum to {}, expected 1.0", self.sum)
    }
}

impl std::error::Error for ProfileSumError {}

impl DutyProfile {
    /// Creates a profile from `(fraction, power)` phases.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileSumError`] unless the fractions are
    /// non-negative and sum to 1 (±1e-9).
    pub fn new(phases: Vec<(f64, Power)>) -> Result<DutyProfile, ProfileSumError> {
        let sum: f64 = phases.iter().map(|&(f, _)| f).sum();
        if (sum - 1.0).abs() > 1e-9 || phases.iter().any(|&(f, _)| f < 0.0) {
            return Err(ProfileSumError { sum });
        }
        Ok(DutyProfile { phases })
    }

    /// Time-weighted average power.
    pub fn average(&self) -> Power {
        let uw: f64 = self.phases.iter().map(|&(f, p)| f * p.as_microwatts()).sum();
        Power::from_microwatts(uw)
    }

    /// The phases.
    pub fn phases(&self) -> &[(f64, Power)] {
        &self.phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_draw_lifetimes() {
        let cell = Battery::cr2032();
        // At the paper's 50 µW floor: 600 mWh / 0.05 mW = 12000 h.
        let hours = cell.lifetime_hours(Power::from_microwatts(50.0));
        assert!((hours - 12_000.0).abs() < 1.0);
        assert!((cell.lifetime_days(Power::from_microwatts(50.0)) - 500.0).abs() < 0.1);
        // At the naive baseline's 4.5 mW: 5.6 days.
        let days = cell.lifetime_days(Power::from_milliwatts(4.5));
        assert!((days - 5.55).abs() < 0.05, "naive days {days}");
    }

    #[test]
    fn the_papers_value_proposition_in_days() {
        // The headline: event-proportional clocking turns a coin cell
        // from days to over a year for a mostly-quiet sensor.
        let profile = DutyProfile::new(vec![
            (0.02, Power::from_milliwatts(4.5)),
            (0.98, Power::from_microwatts(80.0)),
        ])
        .unwrap();
        let proportional = Battery::cr2032().lifetime_days(profile.average());
        let naive = Battery::cr2032().lifetime_days(Power::from_milliwatts(4.5));
        assert!(proportional > 140.0, "proportional {proportional:.0} days");
        assert!(naive < 6.0, "naive {naive:.1} days");
        assert!(proportional / naive > 25.0);
    }

    #[test]
    fn profile_average_is_time_weighted() {
        let p = DutyProfile::new(vec![
            (0.5, Power::from_microwatts(100.0)),
            (0.5, Power::from_microwatts(300.0)),
        ])
        .unwrap();
        assert!((p.average().as_microwatts() - 200.0).abs() < 1e-9);
        assert_eq!(p.phases().len(), 2);
    }

    #[test]
    fn bad_profiles_rejected() {
        let err = DutyProfile::new(vec![(0.6, Power::ZERO), (0.6, Power::ZERO)]).unwrap_err();
        assert!((err.sum - 1.2).abs() < 1e-12);
        assert!(err.to_string().contains("1.0"));
        assert!(DutyProfile::new(vec![(1.5, Power::ZERO), (-0.5, Power::ZERO)]).is_err());
    }

    #[test]
    #[should_panic(expected = "unbounded")]
    fn zero_draw_panics() {
        let _ = Battery::cr2032().lifetime_hours(Power::ZERO);
    }
}
