//! Least-squares line fitting.
//!
//! The Fig. 8 analysis fits the ideal energy-proportional line
//! `P(r) = E_spike·r + P_static`; this module provides the ordinary
//! least-squares machinery to do such fits on measured sweep data and
//! judge their quality (R²).

use serde::{Deserialize, Serialize};

/// An ordinary least-squares line fit `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 = perfect line).
    pub r_squared: f64,
    /// Points used.
    pub n: usize,
}

impl LinearFit {
    /// Fits `(x, y)` points. Returns `None` for fewer than two points
    /// or a degenerate (zero-variance) x.
    ///
    /// # Examples
    ///
    /// ```
    /// use aetr_analysis::fit::LinearFit;
    ///
    /// let points: Vec<(f64, f64)> = (0..10).map(|i| {
    ///     let x = i as f64;
    ///     (x, 3.0 * x + 1.0)
    /// }).collect();
    /// let fit = LinearFit::of(&points).expect("well-posed");
    /// assert!((fit.slope - 3.0).abs() < 1e-9);
    /// assert!((fit.intercept - 1.0).abs() < 1e-9);
    /// assert!(fit.r_squared > 0.999);
    /// ```
    pub fn of(points: &[(f64, f64)]) -> Option<LinearFit> {
        let n = points.len();
        if n < 2 {
            return None;
        }
        let nf = n as f64;
        let mean_x = points.iter().map(|&(x, _)| x).sum::<f64>() / nf;
        let mean_y = points.iter().map(|&(_, y)| y).sum::<f64>() / nf;
        let sxx: f64 = points.iter().map(|&(x, _)| (x - mean_x).powi(2)).sum();
        if sxx == 0.0 {
            return None;
        }
        let sxy: f64 = points.iter().map(|&(x, y)| (x - mean_x) * (y - mean_y)).sum();
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let ss_tot: f64 = points.iter().map(|&(_, y)| (y - mean_y).powi(2)).sum();
        let ss_res: f64 = points.iter().map(|&(x, y)| (y - (slope * x + intercept)).powi(2)).sum();
        let r_squared = if ss_tot == 0.0 { 1.0 } else { (1.0 - ss_res / ss_tot).max(0.0) };
        Some(LinearFit { slope, intercept, r_squared, n })
    }

    /// Predicted y at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, -2.0 * i as f64 + 7.0)).collect();
        let fit = LinearFit::of(&pts).unwrap();
        assert!((fit.slope + 2.0).abs() < 1e-12);
        assert!((fit.intercept - 7.0).abs() < 1e-10);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(100.0) + 193.0).abs() < 1e-9);
    }

    #[test]
    fn noise_lowers_r_squared_but_not_much() {
        // Deterministic pseudo-noise around a line.
        let pts: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let x = i as f64;
                let noise = ((i * 2654435761u64 % 1000) as f64 / 1000.0 - 0.5) * 4.0;
                (x, 0.5 * x + 10.0 + noise)
            })
            .collect();
        let fit = LinearFit::of(&pts).unwrap();
        assert!((fit.slope - 0.5).abs() < 0.02, "slope {}", fit.slope);
        assert!(fit.r_squared > 0.97, "r2 {}", fit.r_squared);
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert!(LinearFit::of(&[]).is_none());
        assert!(LinearFit::of(&[(1.0, 2.0)]).is_none());
        assert!(LinearFit::of(&[(3.0, 1.0), (3.0, 5.0)]).is_none(), "vertical line");
    }

    #[test]
    fn flat_data_fits_zero_slope() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 4.5)).collect();
        let fit = LinearFit::of(&pts).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 4.5);
        assert_eq!(fit.r_squared, 1.0);
    }
}
