//! Summary statistics and region classification for timestamp-error
//! sweeps (the analysis layer of Fig. 6).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::histogram::percentile;

/// Summary of a set of relative-error samples at one operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorSummary {
    /// Number of samples.
    pub count: usize,
    /// Mean relative error.
    pub mean: f64,
    /// Median relative error.
    pub median: f64,
    /// 95th-percentile relative error.
    pub p95: f64,
    /// Maximum relative error.
    pub max: f64,
    /// Fraction of saturated timestamps.
    pub saturation_ratio: f64,
}

impl ErrorSummary {
    /// Summarises `(relative_error, saturated)` samples. `None` for an
    /// empty set.
    pub fn of(samples: &[(f64, bool)]) -> Option<ErrorSummary> {
        if samples.is_empty() {
            return None;
        }
        let errors: Vec<f64> = samples.iter().map(|&(e, _)| e).collect();
        let count = errors.len();
        let mean = errors.iter().sum::<f64>() / count as f64;
        let max = errors.iter().cloned().fold(0.0f64, f64::max);
        let saturated = samples.iter().filter(|&&(_, s)| s).count();
        Some(ErrorSummary {
            count,
            mean,
            median: percentile(&errors, 50.0).expect("non-empty"),
            p95: percentile(&errors, 95.0).expect("non-empty"),
            max,
            saturation_ratio: saturated as f64 / count as f64,
        })
    }

    /// The paper's accuracy figure: `1 − mean`.
    pub fn accuracy(&self) -> f64 {
        1.0 - self.mean
    }
}

impl fmt::Display for ErrorSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={}, mean {:.4}, median {:.4}, p95 {:.4}, max {:.4}, sat {:.1}%",
            self.count,
            self.mean,
            self.median,
            self.p95,
            self.max,
            self.saturation_ratio * 100.0
        )
    }
}

/// The three operating regions the paper identifies on the Fig. 6
/// error-vs-rate curve (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Region {
    /// Event rate so low the clock is mostly off: timestamps saturate,
    /// events are treated as uncorrelated.
    Inactive,
    /// The design target: the divided-clock methodology is in play and
    /// the error stays below the analytic bound.
    Active,
    /// Inter-spike times approach the undivided sampling period: the
    /// Nyquist limit of the chosen `T_min`, not of the division scheme.
    HighActivity,
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Region::Inactive => "inactive",
            Region::Active => "active",
            Region::HighActivity => "high-activity",
        };
        f.write_str(s)
    }
}

/// Classifies an operating point by its error signature: mostly
/// saturated timestamps mean the clock was off (inactive); a mean
/// inter-spike interval under `high_activity_threshold` (events per
/// second above it) means the clock never gets to divide.
///
/// `max_measurable_secs` is the interface's saturation interval
/// (`SegmentTable::max_measurable`); `t_min_secs` the fastest sampling
/// period.
pub fn classify_region(
    rate_hz: f64,
    saturation_ratio: f64,
    max_measurable_secs: f64,
    theta_div: u32,
    t_min_secs: f64,
) -> Region {
    // Mostly-saturated points are inactive by definition.
    if saturation_ratio > 0.5 {
        return Region::Inactive;
    }
    // Above ~1/(θ·T_min) the first division never happens: the clock is
    // effectively constant-frequency (high-activity).
    let first_division_rate = 1.0 / (theta_div as f64 * t_min_secs);
    if rate_hz >= first_division_rate {
        return Region::HighActivity;
    }
    // With a mean inter-spike interval beyond twice the measurable
    // range, most intervals saturate: inactive even if this particular
    // sample was lucky.
    if rate_hz * max_measurable_secs < 0.5 {
        Region::Inactive
    } else {
        Region::Active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_stats() {
        let samples: Vec<(f64, bool)> =
            vec![(0.01, false), (0.02, false), (0.03, false), (1.0, true)];
        let s = ErrorSummary::of(&samples).unwrap();
        assert_eq!(s.count, 4);
        assert!((s.mean - 0.265).abs() < 1e-12);
        assert!((s.median - 0.025).abs() < 1e-12);
        assert_eq!(s.max, 1.0);
        assert!((s.saturation_ratio - 0.25).abs() < 1e-12);
        assert!((s.accuracy() - 0.735).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_none() {
        assert_eq!(ErrorSummary::of(&[]), None);
    }

    #[test]
    fn display_contains_the_numbers() {
        let s = ErrorSummary::of(&[(0.5, true)]).unwrap();
        let text = s.to_string();
        assert!(text.contains("n=1"), "{text}");
        assert!(text.contains("sat 100.0%"), "{text}");
    }

    #[test]
    fn region_classification_prototype_boundaries() {
        // Prototype: T_min ≈ 66.6 ns, θ=64, max measurable ≈ 64 µs.
        let t_min = 66.6e-9;
        let max_meas = 63.9e-6;
        // 100 evt/s, all saturated: inactive.
        assert_eq!(classify_region(100.0, 0.98, max_meas, 64, t_min), Region::Inactive);
        // 100 kevt/s, little saturation: active.
        assert_eq!(classify_region(100_000.0, 0.01, max_meas, 64, t_min), Region::Active);
        // 600 kevt/s: above 1/(64·66.6ns) ≈ 234 kevt/s -> high-activity.
        assert_eq!(classify_region(600_000.0, 0.0, max_meas, 64, t_min), Region::HighActivity);
        // 10 kevt/s: mean ISI 100 µs, past the 64 µs range but under
        // 2x — still mostly measurable, so active.
        assert_eq!(classify_region(10_000.0, 0.3, max_meas, 64, t_min), Region::Active);
        // 5 kevt/s: mean ISI 200 µs, >2x the range: inactive.
        assert_eq!(classify_region(5_000.0, 0.4, max_meas, 64, t_min), Region::Inactive);
        assert_eq!(classify_region(1_000.0, 0.6, max_meas, 64, t_min), Region::Inactive);
    }

    #[test]
    fn region_display() {
        assert_eq!(Region::Active.to_string(), "active");
        assert_eq!(Region::HighActivity.to_string(), "high-activity");
    }
}
