//! The paper's motivating scenario end to end: a silicon cochlea hears
//! a word, the interface timestamps the spikes, batches them over I2S,
//! and an MCU reconstructs the spike timeline offline.
//!
//! ```sh
//! cargo run -p aetr --example cochlea_keyword
//! ```

use aetr::interface::{AerToI2sInterface, InterfaceConfig};
use aetr::mcu::{FidelityReport, McuReceiver};
use aetr_cochlea::model::{Cochlea, CochleaConfig};
use aetr_cochlea::word::fig7_word;
use aetr_sim::time::SimTime;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The sensor: a DAS1-like cochlea listening to a synthetic word.
    let audio = fig7_word(16_000, 7);
    let mut cochlea = Cochlea::new(CochleaConfig::das1())?;
    let spikes = cochlea.process(&audio);
    println!(
        "cochlea: {} of audio -> {} spikes (peak channel activity during syllables)",
        audio.duration(),
        spikes.len()
    );

    // 2. The interface: full discrete-event simulation of the Fig. 3
    //    architecture.
    let interface = AerToI2sInterface::new(InterfaceConfig::prototype())?;
    let horizon = SimTime::ZERO + audio.duration();
    let report = interface.run(&spikes, horizon);
    report.handshake.verify_protocol()?;

    println!("\ninterface:");
    println!("  events captured: {}", report.events.len());
    println!("  oscillator wakes: {}", report.wake_count);
    println!("  FIFO: {}", report.fifo_stats);
    println!("  I2S frames: {} carrying {} events", report.i2s.len(), report.i2s.event_count());
    println!("  power: {}", report.power.total);

    // 3. The MCU: decode the I2S stream and rebuild the spike timeline.
    let mcu = McuReceiver::new(interface.config().clock.base_sampling_period());
    let rebuilt = mcu.receive(&report.i2s);
    let fidelity = FidelityReport::compare(&spikes, &rebuilt);
    println!("\nmcu reconstruction:");
    println!("  {} sent, {} received", fidelity.sent, fidelity.received);
    println!(
        "  timing accuracy {:.2}% (mean ISI error {:.2}%, worst {:.2}%)",
        fidelity.accuracy() * 100.0,
        fidelity.mean_isi_error * 100.0,
        fidelity.max_isi_error * 100.0
    );
    Ok(())
}
