//! Offline stub of `proptest`.
//!
//! Part of the sandboxed-build vendor set (see `vendor/serde/src/lib.rs`
//! for the rationale). This is a miniature but genuine property-testing
//! framework implementing the subset of the proptest 1.x API used by
//! this workspace:
//!
//! - [`strategy::Strategy`] with ranges over the integer and float
//!   primitives, tuples, [`strategy::Just`], `prop_map`, unions
//!   ([`prop_oneof!`]), [`collection::vec`], [`bool::ANY`] and
//!   [`arbitrary::any`];
//! - the [`proptest!`] macro with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`, plus
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`];
//! - a deterministic per-test RNG seeded from the test's module path,
//!   so failures reproduce without a persistence file.
//!
//! Deliberately omitted (unused in this tree): shrinking, failure
//! persistence, `prop_flat_map`/`prop_filter`, regex/string strategies.
//! A failing case panics with the generated inputs' Debug rendering
//! where available via the assertion message instead of shrinking.

pub mod test_runner {
    //! Case execution: configuration, RNG, and error plumbing.

    /// Mirrors `proptest::test_runner::Config` (subset).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Upper bound on `prop_assume!` rejections before the test
        /// aborts as under-constrained.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// Config with a custom case count.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases, ..Config::default() }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256, max_global_rejects: 65_536 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; try another case.
        Reject(String),
        /// A `prop_assert*` failed; the whole test fails.
        Fail(String),
    }

    /// Deterministic per-test RNG (SplitMix64 over an FNV-1a hash of
    /// the fully qualified test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from the test's fully qualified name, so
        /// every run of a given test explores the same cases.
        pub fn for_test(qualified_name: &str) -> TestRng {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in qualified_name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: hash }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use std::marker::PhantomData;
    use std::ops::Range;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type for heterogeneous collections
        /// (used by [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between type-erased strategies
    /// ([`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng), self.3.generate(rng))
        }
    }

    /// Strategy for the full domain of `T` ([`any`](crate::arbitrary::any)).
    pub struct AnyStrategy<T> {
        pub(crate) _marker: PhantomData<T>,
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for primitives.

    use std::marker::PhantomData;

    use crate::strategy::{AnyStrategy, Strategy};
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy { _marker: PhantomData }
    }
}

pub mod collection {
    //! Collection strategies.

    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length lies in `size` (half-open).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding unbiased booleans.
    pub struct Any;

    /// The canonical boolean strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs (default 256; override with
/// `#![proptest_config(ProptestConfig::with_cases(n))]` as the first
/// token in the block).
#[macro_export]
macro_rules! proptest {
    (@impl ($cfg:expr);
     $($(#[$attr:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            // NOTE: callers write `#[test]` on each fn themselves
            // (matching real-proptest idiom); attrs pass through
            // verbatim rather than the macro adding its own.
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut successes: u32 = 0;
                let mut rejects: u32 = 0;
                while successes < config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => successes += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(what)) => {
                            rejects += 1;
                            assert!(
                                rejects < config.max_global_rejects,
                                "test {} rejected {} inputs (last: {}) — prop_assume too strict",
                                stringify!($name), rejects, what,
                            );
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {} of {} failed: {}",
                                successes + 1, config.cases, msg,
                            );
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl (<$crate::test_runner::Config as ::core::default::Default>::default());
            $($rest)*
        );
    };
}

/// Asserts a condition inside a [`proptest!`] body; failure fails the
/// whole test with the stringified condition or a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}: {:?} != {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {:?} == {:?}",
                l, r
            )));
        }
    }};
}

/// Discards the current case when its inputs violate a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn per_test_rng_is_deterministic() {
        let mut a = crate::test_runner::TestRng::for_test("x::y");
        let mut b = crate::test_runner::TestRng::for_test("x::y");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = crate::test_runner::TestRng::for_test("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges honour their bounds.
        #[test]
        fn ranges_in_bounds(x in 10u64..20, y in -5.0f64..5.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5.0..5.0).contains(&y));
        }

        /// Vec lengths stay inside the size range; prop_map applies.
        #[test]
        fn vec_and_map(v in crate::collection::vec(0u8..10, 2..6).prop_map(|v| v.len())) {
            prop_assert!((2..6).contains(&v));
        }

        /// Unions only yield their members; assume rejects work.
        #[test]
        fn union_and_assume(p in prop_oneof![Just(1u8), Just(2u8), Just(3u8)], flip in crate::bool::ANY) {
            prop_assume!(p != 3 || flip);
            prop_assert!((1..=3).contains(&p));
        }

        /// `any` covers the full domain without panicking.
        #[test]
        fn any_u32(word in any::<u32>(), pair in (0u16..4, 0u64..(1 << 22))) {
            prop_assert_eq!(u64::from(word) >> 32, 0);
            prop_assert!(pair.0 < 4 && pair.1 < (1 << 22));
        }
    }
}
