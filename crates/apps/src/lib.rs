//! # aetr-apps — information-level applications on AETR streams
//!
//! The paper's title is *time-to-information extraction*; this crate
//! closes the loop by measuring information, not just timestamps:
//! spike-train [feature extraction](features), a microcontroller-scale
//! [nearest-centroid classifier](classifier), and an end-to-end
//! [keyword-spotting experiment](keyword) that compares classification
//! accuracy on raw sensor streams against AETR-quantized,
//! MCU-reconstructed ones, and binaural [sound localization]
//! (interaural time difference) — the microsecond-scale timing task
//! the DAS1 sensor exists for.
//!
//! [sound localization]: localization
//!
//! # Examples
//!
//! ```no_run
//! use aetr_apps::keyword::{run_experiment, Pipeline};
//! use aetr_clockgen::config::ClockGenConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let clock = ClockGenConfig::prototype();
//! let eval = run_experiment(Pipeline::Quantized, &clock, 3, 3)?;
//! println!("keyword accuracy through the interface: {:.0}%", eval.accuracy() * 100.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classifier;
pub mod features;
pub mod keyword;
pub mod localization;

pub use classifier::{CentroidModel, Evaluation};
pub use features::{extract, FeatureConfig, FeatureVector};
