//! Per-event causal lineage and timestamp-error-budget attribution.
//!
//! The aggregate telemetry of DESIGN.md §11 can say *how many* events
//! were captured, divided-down, or dropped — it cannot say *why one
//! particular timestamp is wrong*. When lineage collection is enabled
//! ([`crate::TelemetryConfig::with_lineage`]), every captured spike
//! accumulates an [`EventLineage`] record along its whole path through
//! the interface: AER arrival, synchroniser/grid wait, wake penalty,
//! division level and sampling period at capture, quantization error,
//! FIFO residency (or drop cause), and I2S transmission window.
//!
//! On top of the raw records, [`ErrorBudget`] attributes the total
//! timestamp error per cause and per division level. The decomposition
//! is *exact by construction* (integer-picosecond algebra, no model
//! fitting): for event `i` with arrival `a_i`, detection `d_i` and
//! counter value `k_i` (in `T_min` ticks),
//!
//! ```text
//! alignment_i  = d_i − a_i                     (sync + grid + wake wait)
//! sat_i        = (d_i − d_{i−1}) − k_i·T_min   (counter freeze/clamp residual)
//! error_i      = k_i·T_min − (a_i − a_{i−1})
//!              = alignment_i − alignment_{i−1} − sat_i
//! ```
//!
//! which splits into four signed cause buckets that sum to `error_i`
//! identically: **grid** (`alignment_i` minus the wake penalty),
//! **wake** (the measured oscillator wake duration), **origin**
//! (`−alignment_{i−1}`, the previous event's alignment that shifted
//! this interval's measurement origin) and **saturation** (`−sat_i`,
//! time the frozen or clamped counter never counted). The per-level
//! envelope of the clean terms is the paper's `~1/θ_div` accuracy
//! claim (see [`relative_error_bound`] and DESIGN.md §14).
//!
//! Records export as JSONL (one object per line, validated by
//! `schemas/lineage.schema.json`) and as Chrome-trace *flow events*
//! that join the §11 spans, so a single event's journey renders as an
//! arrow across the handshake, clock and I2S tracks in Perfetto.

use std::cell::Cell;

use serde::{Deserialize, Serialize};

use aetr_sim::time::{SimDuration, SimTime};

use crate::json::Json;

/// Why an event never reached the I2S stream (or `Delivered` if it
/// did / still can).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropCause {
    /// Not dropped: the event reached (or is still en route to) the
    /// I2S stream.
    Delivered,
    /// Rejected by a full FIFO in normal operation
    /// (`OverflowPolicy::DropNewest`).
    Overflow,
    /// Rejected by a full FIFO while the watchdog had the interface in
    /// degraded mode.
    Degraded,
    /// Stored, but later displaced from a full FIFO by a newer event
    /// (`OverflowPolicy::DropOldest`).
    Displaced,
    /// Transmitted, but lost to an injected receiver-side I2S frame
    /// slip.
    FrameSlip,
    /// The crossbar did not route the front-end word into the buffer.
    NotRouted,
}

impl DropCause {
    /// Stable lowercase label (JSONL field / schema enum value).
    pub fn label(self) -> &'static str {
        match self {
            DropCause::Delivered => "delivered",
            DropCause::Overflow => "overflow",
            DropCause::Degraded => "degraded",
            DropCause::Displaced => "displaced",
            DropCause::FrameSlip => "frame-slip",
            DropCause::NotRouted => "not-routed",
        }
    }
}

/// Packed "stage never happened" marker for the optional per-stage
/// instants. `EventLineage` is recorded once per captured spike on the
/// interface's hot path, so the five optional instants are stored as
/// raw picosecond `u64`s with this sentinel instead of
/// `Option<SimTime>` — that keeps the record at 120 bytes instead of
/// 160, which is measurable across a dense run (the accessors still
/// present them as `Option<SimTime>`).
const UNSET_PS: u64 = u64::MAX;

/// The full causal story of one captured event.
///
/// Stage instants are `None` when the corresponding stage never
/// happened (e.g. no `ack_rise` for an aborted handshake, no FIFO
/// times for an overflow drop); the JSONL export omits them entirely.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventLineage {
    /// Capture-order index (also the Chrome flow-event id).
    pub index: u32,
    /// AER address.
    pub address: u16,
    /// AER arrival: when the sensor asserted `REQ`.
    pub arrival: SimTime,
    /// When the sampling clock captured the event.
    pub detection: SimTime,
    /// Captured counter value, in `T_min` ticks.
    pub timestamp_ticks: u64,
    /// The counter was frozen by a shutdown or clamped at its
    /// maximum — the timestamp is a saturation marker, not a measure.
    pub saturated: bool,
    /// Recursive-division level at the capturing tick.
    pub division_level: u32,
    /// Period multiplier at the capturing tick (`2^level` under the
    /// recursive policy).
    pub multiplier: u64,
    /// Sampling period at the capturing tick
    /// (`multiplier × T_min`).
    pub sampling_period: SimDuration,
    /// This event's `REQ` restarted the ring oscillator from sleep.
    pub woke: bool,
    /// Measured wake duration charged to this event
    /// ([`SimDuration::ZERO`] unless [`woke`](Self::woke); includes
    /// watchdog wake retries).
    pub wake_penalty: SimDuration,
    /// When `ACK` rose ([`UNSET_PS`] if the handshake was aborted).
    ack_rise_ps: u64,
    /// Watchdog `ACK` re-drives this handshake needed.
    pub ack_retries: u32,
    /// Signed quantization error of the measured inter-event interval,
    /// in (fractional) `T_min` ticks:
    /// `(timestamp_ticks·T_min − (arrival − prev_arrival)) / T_min`.
    pub quantization_error_ticks: f64,
    /// When the event entered the FIFO.
    fifo_enqueue_ps: u64,
    /// When the event left the FIFO (dequeue for transmission, or the
    /// instant it was displaced).
    fifo_dequeue_ps: u64,
    /// When its I2S frame started on the wire.
    i2s_start_ps: u64,
    /// When its I2S frame finished on the wire.
    i2s_end_ps: u64,
    /// Terminal fate.
    pub drop_cause: DropCause,
}

/// Core capture-time facts of one event, grouped so
/// [`EventLineage::captured`] stays a readable call (the runner fills
/// the downstream stages in as they happen via the `set_*` methods).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Capture {
    /// Capture-order index.
    pub index: u32,
    /// AER address.
    pub address: u16,
    /// `REQ` rise.
    pub arrival: SimTime,
    /// Sampling-edge capture instant.
    pub detection: SimTime,
    /// Captured counter value, in `T_min` ticks.
    pub timestamp_ticks: u64,
    /// Counter frozen or clamped.
    pub saturated: bool,
    /// Division level at capture.
    pub division_level: u32,
    /// Period multiplier at capture.
    pub multiplier: u64,
    /// Sampling period at capture.
    pub sampling_period: SimDuration,
    /// Capture restarted the oscillator.
    pub woke: bool,
    /// Measured wake duration charged to this event.
    pub wake_penalty: SimDuration,
    /// Signed quantization error, in fractional `T_min` ticks.
    pub quantization_error_ticks: f64,
}

impl EventLineage {
    /// A freshly captured event: every downstream stage still unset,
    /// fate provisionally [`DropCause::Delivered`].
    #[inline]
    pub fn captured(c: Capture) -> EventLineage {
        EventLineage {
            index: c.index,
            address: c.address,
            arrival: c.arrival,
            detection: c.detection,
            timestamp_ticks: c.timestamp_ticks,
            saturated: c.saturated,
            division_level: c.division_level,
            multiplier: c.multiplier,
            sampling_period: c.sampling_period,
            woke: c.woke,
            wake_penalty: c.wake_penalty,
            ack_rise_ps: UNSET_PS,
            ack_retries: 0,
            quantization_error_ticks: c.quantization_error_ticks,
            fifo_enqueue_ps: UNSET_PS,
            fifo_dequeue_ps: UNSET_PS,
            i2s_start_ps: UNSET_PS,
            i2s_end_ps: UNSET_PS,
            drop_cause: DropCause::Delivered,
        }
    }

    fn opt(ps: u64) -> Option<SimTime> {
        (ps != UNSET_PS).then(|| SimTime::from_ps(ps))
    }

    /// When `ACK` rose (`None` if the handshake was aborted).
    pub fn ack_rise(&self) -> Option<SimTime> {
        Self::opt(self.ack_rise_ps)
    }

    /// When the event entered the FIFO.
    pub fn fifo_enqueue(&self) -> Option<SimTime> {
        Self::opt(self.fifo_enqueue_ps)
    }

    /// When the event left the FIFO (dequeue for transmission, or the
    /// instant it was displaced).
    pub fn fifo_dequeue(&self) -> Option<SimTime> {
        Self::opt(self.fifo_dequeue_ps)
    }

    /// When its I2S frame started on the wire.
    pub fn i2s_start(&self) -> Option<SimTime> {
        Self::opt(self.i2s_start_ps)
    }

    /// When its I2S frame finished on the wire.
    pub fn i2s_end(&self) -> Option<SimTime> {
        Self::opt(self.i2s_end_ps)
    }

    /// Records the `ACK` rise of this event's handshake.
    pub fn set_ack_rise(&mut self, t: SimTime) {
        self.ack_rise_ps = t.as_ps();
    }

    /// Marks the handshake as aborted (clears any recorded `ACK`).
    pub fn clear_ack_rise(&mut self) {
        self.ack_rise_ps = UNSET_PS;
    }

    /// Records the FIFO enqueue instant.
    pub fn set_fifo_enqueue(&mut self, t: SimTime) {
        self.fifo_enqueue_ps = t.as_ps();
    }

    /// Records the FIFO exit instant (dequeue or displacement).
    pub fn set_fifo_dequeue(&mut self, t: SimTime) {
        self.fifo_dequeue_ps = t.as_ps();
    }

    /// Records the transmission stage: FIFO dequeue at `start` and the
    /// I2S frame window `start..done`.
    pub fn set_transmitted(&mut self, start: SimTime, done: SimTime) {
        self.fifo_dequeue_ps = start.as_ps();
        self.i2s_start_ps = start.as_ps();
        self.i2s_end_ps = done.as_ps();
    }

    /// `REQ`-rise → `ACK`-rise handshake latency, when `ACK` came.
    pub fn ack_latency(&self) -> Option<SimDuration> {
        self.ack_rise().map(|a| a.saturating_duration_since(self.arrival))
    }

    /// Time spent buffered in the FIFO.
    pub fn fifo_residency(&self) -> Option<SimDuration> {
        match (self.fifo_enqueue(), self.fifo_dequeue()) {
            (Some(enq), Some(deq)) => Some(deq.saturating_duration_since(enq)),
            _ => None,
        }
    }

    /// Arrival → end-of-I2S-frame latency for delivered events.
    pub fn end_to_end_latency(&self) -> Option<SimDuration> {
        match (self.drop_cause, self.i2s_end()) {
            (DropCause::Delivered, Some(end)) => Some(end.saturating_duration_since(self.arrival)),
            _ => None,
        }
    }

    /// One JSONL object for this record. Unset stage instants are
    /// omitted, never emitted as `null`, so the subset schema can
    /// type-check every present field.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(&str, Json)> = vec![
            ("index", Json::from(u64::from(self.index))),
            ("address", Json::from(u64::from(self.address))),
            ("arrival_ps", Json::from(self.arrival.as_ps())),
            ("detection_ps", Json::from(self.detection.as_ps())),
            ("timestamp_ticks", Json::from(self.timestamp_ticks)),
            ("saturated", Json::from(self.saturated)),
            ("division_level", Json::from(u64::from(self.division_level))),
            ("multiplier", Json::from(self.multiplier)),
            ("sampling_period_ps", Json::from(self.sampling_period.as_ps())),
            ("woke", Json::from(self.woke)),
            ("wake_penalty_ps", Json::from(self.wake_penalty.as_ps())),
            ("ack_retries", Json::from(u64::from(self.ack_retries))),
            ("quantization_error_ticks", Json::from(self.quantization_error_ticks)),
            ("drop_cause", Json::from(self.drop_cause.label())),
        ];
        let mut opt = |name: &'static str, t: Option<SimTime>| {
            if let Some(t) = t {
                fields.push((name, Json::from(t.as_ps())));
            }
        };
        opt("ack_rise_ps", self.ack_rise());
        opt("fifo_enqueue_ps", self.fifo_enqueue());
        opt("fifo_dequeue_ps", self.fifo_dequeue());
        opt("i2s_start_ps", self.i2s_start());
        opt("i2s_end_ps", self.i2s_end());
        Json::object(fields)
    }
}

thread_local! {
    // One retired backing buffer, recycled between logs on the same
    // thread. A dense run's record storage is hundreds of kilobytes —
    // past glibc's mmap/trim thresholds — so iterated instrumented
    // runs (bench loops, fault campaigns, parameter sweeps) that free
    // and reallocate it every run spend more wall-clock re-faulting
    // those pages than recording the events. Recycling the largest
    // retired buffer keeps the pages warm; at most one buffer is held
    // per thread, for the thread's lifetime.
    static SPARE_RECORDS: Cell<Vec<EventLineage>> = const { Cell::new(Vec::new()) };
}

/// Append-only log of [`EventLineage`] records, in capture order.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LineageLog {
    records: Vec<EventLineage>,
}

impl LineageLog {
    /// Creates an empty log.
    pub fn new() -> LineageLog {
        LineageLog::default()
    }

    /// Pre-sizes the backing storage for `n` more records.
    ///
    /// [`EventLineage`] is a wide record, so growing the log by
    /// doubling from empty memcpys the whole backlog several times
    /// over; a runner that knows the stimulus length reserves once
    /// up front instead. A still-unused log adopts the thread's
    /// recycled buffer first (see `SPARE_RECORDS`); together these two
    /// are what keep recording inside the bench's 10% overhead gate.
    pub fn reserve(&mut self, n: usize) {
        if self.records.capacity() == 0 {
            let mut spare = SPARE_RECORDS.take();
            spare.clear();
            self.records = spare;
        }
        self.records.reserve(n);
    }

    /// Appends a record; its `index` must equal the current length.
    /// Inlined so the caller constructs the 120-byte record directly in
    /// the vector's tail slot instead of copying it through the call.
    #[inline]
    pub fn push(&mut self, record: EventLineage) {
        debug_assert_eq!(record.index as usize, self.records.len(), "records are capture-ordered");
        self.records.push(record);
    }

    /// All records, in capture order.
    pub fn records(&self) -> &[EventLineage] {
        &self.records
    }

    /// Mutable record access by capture index (used by the runner to
    /// fill in downstream stages as they happen).
    pub fn get_mut(&mut self, index: u32) -> Option<&mut EventLineage> {
        self.records.get_mut(index as usize)
    }

    /// Record by capture index.
    pub fn get(&self, index: u32) -> Option<&EventLineage> {
        self.records.get(index as usize)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// JSONL export: one JSON object per line, schema
    /// `schemas/lineage.schema.json` per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_json().to_string());
            out.push('\n');
        }
        out
    }

    /// Chrome-trace *flow events* joining the span tracks: per record,
    /// a flow start (`"ph":"s"`) at arrival on the handshake track, a
    /// step (`"ph":"t"`) at detection on the clock-state track, and —
    /// for events that reached the wire — a finish (`"ph":"f"`) at the
    /// I2S frame end on the I2S track. Track ids match
    /// [`crate::span::SpanLog::to_chrome_trace`]'s kind order.
    pub fn chrome_flow_events(&self) -> Vec<String> {
        // tid indices from SpanKind::all(): handshake=0, i2s_frame=3,
        // clock_state=4.
        const TID_HANDSHAKE: u32 = 0;
        const TID_I2S: u32 = 3;
        const TID_CLOCK: u32 = 4;
        let flow = |ph: &str, tid: u32, id: u32, t: SimTime, bind_end: bool| {
            format!(
                "{{\"ph\":\"{ph}\",\"pid\":0,\"tid\":{tid},\"cat\":\"lineage\",\
                 \"name\":\"event\",\"id\":{id},\"ts\":{}{}}}",
                t.as_ps() as f64 / 1e6,
                if bind_end { ",\"bp\":\"e\"" } else { "" },
            )
        };
        let mut out = Vec::with_capacity(self.records.len() * 3);
        for r in &self.records {
            out.push(flow("s", TID_HANDSHAKE, r.index, r.arrival, false));
            out.push(flow("t", TID_CLOCK, r.index, r.detection, false));
            if let Some(end) = r.i2s_end() {
                out.push(flow("f", TID_I2S, r.index, end, true));
            }
        }
        out
    }
}

impl Drop for LineageLog {
    /// Retires the backing buffer into the thread's spare slot (largest
    /// buffer wins) so the next instrumented run on this thread starts
    /// with warm pages instead of a fresh page-faulting allocation.
    fn drop(&mut self) {
        let mine = std::mem::take(&mut self.records);
        // `try_with`: during thread teardown the TLS slot may already
        // be gone — then the buffer is simply freed as usual.
        let _ = SPARE_RECORDS.try_with(|spare| {
            let kept = spare.take();
            spare.set(if mine.capacity() > kept.capacity() { mine } else { kept });
        });
    }
}

/// Signed per-cause error contributions, in integer picoseconds.
///
/// The four buckets sum to the total signed timestamp error *exactly*
/// (see the module docs for the algebra).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ErrorCauses {
    /// Synchroniser + sampling-grid wait of this event.
    pub grid_ps: i128,
    /// Oscillator wake time charged to this event.
    pub wake_ps: i128,
    /// Minus the previous event's alignment (the measurement origin it
    /// shifted).
    pub origin_ps: i128,
    /// Minus the counter freeze/clamp residual (sleep time the frozen
    /// counter never counted, counter-maximum clamping).
    pub saturation_ps: i128,
}

impl ErrorCauses {
    /// The exact signed total: `grid + wake + origin + saturation`.
    pub fn total_ps(&self) -> i128 {
        self.grid_ps + self.wake_ps + self.origin_ps + self.saturation_ps
    }

    fn accumulate(&mut self, other: &ErrorCauses) {
        self.grid_ps += other.grid_ps;
        self.wake_ps += other.wake_ps;
        self.origin_ps += other.origin_ps;
        self.saturation_ps += other.saturation_ps;
    }
}

/// One event's exact error decomposition (a row of [`ErrorBudget`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventError {
    /// Capture index.
    pub index: u32,
    /// Division level at capture.
    pub division_level: u32,
    /// Period multiplier at capture.
    pub multiplier: u64,
    /// Previous event's period multiplier (1 for the first event).
    pub prev_multiplier: u64,
    /// True inter-arrival interval `a_i − a_{i−1}` (from `t = 0` for
    /// the first event), ps.
    pub true_interval_ps: i128,
    /// Measured interval `timestamp_ticks × T_min`, ps.
    pub measured_ps: i128,
    /// Signed timestamp error `measured − true`, ps.
    pub error_ps: i128,
    /// Exact per-cause split of `error_ps`.
    pub causes: ErrorCauses,
    /// This or the previous event carried a frozen/clamped counter
    /// (the saturation bucket dominates; no grid-envelope claim
    /// applies).
    pub clean: bool,
}

impl EventError {
    /// `|error| / true_interval`, the per-event relative error.
    pub fn relative_error(&self) -> f64 {
        if self.true_interval_ps <= 0 {
            return 0.0;
        }
        self.error_ps.unsigned_abs() as f64 / self.true_interval_ps as f64
    }
}

/// Per-division-level aggregate of [`ErrorBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LevelBudget {
    /// Division level at capture.
    pub division_level: u32,
    /// Events captured at this level.
    pub events: u64,
    /// Signed error total, ps.
    pub error_ps: i128,
    /// Absolute error total, ps.
    pub abs_error_ps: i128,
    /// Largest relative error over the *clean* events at this level
    /// (no saturation at either endpoint, no wake) — the quantity the
    /// paper's `~1/θ_div` envelope bounds.
    pub max_relative_error: f64,
}

/// Exact attribution of the total timestamp error of a run, per cause
/// and per division level, computed from a [`LineageLog`].
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorBudget {
    /// `T_min` used for tick↔time conversion, ps.
    pub t_min_ps: u64,
    /// Per-event rows, capture order.
    pub rows: Vec<EventError>,
    /// Signed total error `Σ error_i`, ps.
    pub total_error_ps: i128,
    /// Total absolute error `Σ |error_i|`, ps.
    pub total_abs_error_ps: i128,
    /// Signed per-cause totals (sum exactly to `total_error_ps`).
    pub causes: ErrorCauses,
    /// Per-division-level aggregates, sorted by level.
    pub by_level: Vec<LevelBudget>,
}

impl ErrorBudget {
    /// Decomposes the log's records against the sampling resolution
    /// `t_min` (the interface's `base_sampling_period`).
    pub fn from_records(records: &[EventLineage], t_min: SimDuration) -> ErrorBudget {
        let t_min_ps = t_min.as_ps();
        let mut rows = Vec::with_capacity(records.len());
        let mut causes = ErrorCauses::default();
        let mut total_error_ps: i128 = 0;
        let mut total_abs_error_ps: i128 = 0;
        let mut levels: Vec<LevelBudget> = Vec::new();
        for (i, r) in records.iter().enumerate() {
            let prev = i.checked_sub(1).map(|p| &records[p]);
            let row = decompose(r, prev, t_min_ps);
            causes.accumulate(&row.causes);
            total_error_ps += row.error_ps;
            total_abs_error_ps += row.error_ps.unsigned_abs() as i128;
            let slot = match levels.iter_mut().find(|l| l.division_level == r.division_level) {
                Some(slot) => slot,
                None => {
                    levels.push(LevelBudget {
                        division_level: r.division_level,
                        ..LevelBudget::default()
                    });
                    levels.last_mut().expect("just pushed")
                }
            };
            slot.events += 1;
            slot.error_ps += row.error_ps;
            slot.abs_error_ps += row.error_ps.unsigned_abs() as i128;
            if row.clean {
                slot.max_relative_error = slot.max_relative_error.max(row.relative_error());
            }
            rows.push(row);
        }
        levels.sort_by_key(|l| l.division_level);
        ErrorBudget { t_min_ps, rows, total_error_ps, total_abs_error_ps, causes, by_level: levels }
    }

    /// Indices of *clean* rows whose error exceeds the analytic
    /// per-event alignment budget
    /// `(sync_stages + 2) × (m_i + m_{i−1}) × T_min` — empty on every
    /// fault-free run (the acceptance check behind the paper's
    /// `~1/θ_div` claim; DESIGN.md §14 derives the budget).
    pub fn bound_violations(&self, sync_stages: u32) -> Vec<u32> {
        let budget_of = |row: &EventError| {
            i128::from(sync_stages + 2)
                * (i128::from(row.multiplier) + i128::from(row.prev_multiplier))
                * i128::from(self.t_min_ps)
        };
        self.rows
            .iter()
            .filter(|row| row.clean && row.error_ps.abs() > budget_of(row))
            .map(|row| row.index)
            .collect()
    }

    /// Human-readable multi-line summary (the `aetr-cli lineage`
    /// footer).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let us = |ps: i128| ps as f64 / 1e6;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "error budget over {} events: total {:+.3} us (abs {:.3} us)",
            self.rows.len(),
            us(self.total_error_ps),
            us(self.total_abs_error_ps),
        );
        let _ = writeln!(
            out,
            "  by cause: grid {:+.3} us, wake {:+.3} us, origin {:+.3} us, saturation {:+.3} us",
            us(self.causes.grid_ps),
            us(self.causes.wake_ps),
            us(self.causes.origin_ps),
            us(self.causes.saturation_ps),
        );
        for l in &self.by_level {
            let _ = writeln!(
                out,
                "  level {}: {} events, error {:+.3} us (abs {:.3} us), max clean rel {:.5}",
                l.division_level,
                l.events,
                us(l.error_ps),
                us(l.abs_error_ps),
                l.max_relative_error,
            );
        }
        out
    }
}

/// Exact error decomposition of one record against its predecessor
/// (`None` for the first event: the measurement origin is `t = 0`).
pub fn decompose(record: &EventLineage, prev: Option<&EventLineage>, t_min_ps: u64) -> EventError {
    let arrival = record.arrival.as_ps() as i128;
    let detection = record.detection.as_ps() as i128;
    let (prev_arrival, prev_detection, prev_alignment, prev_multiplier, prev_saturated) = match prev
    {
        Some(p) => (
            p.arrival.as_ps() as i128,
            p.detection.as_ps() as i128,
            p.detection.as_ps() as i128 - p.arrival.as_ps() as i128,
            p.multiplier,
            p.saturated,
        ),
        // The counter history starts at t = 0 with alignment 0.
        None => (0, 0, 0, 1, false),
    };
    let alignment = detection - arrival;
    let measured = record.timestamp_ticks as i128 * t_min_ps as i128;
    let sat = (detection - prev_detection) - measured;
    let true_interval = arrival - prev_arrival;
    let error = measured - true_interval;
    let wake = record.wake_penalty.as_ps() as i128;
    let causes = ErrorCauses {
        grid_ps: alignment - wake,
        wake_ps: wake,
        origin_ps: -prev_alignment,
        saturation_ps: -sat,
    };
    debug_assert_eq!(causes.total_ps(), error, "cause split must be exact");
    EventError {
        index: record.index,
        division_level: record.division_level,
        multiplier: record.multiplier,
        prev_multiplier,
        true_interval_ps: true_interval,
        measured_ps: measured,
        error_ps: error,
        causes,
        clean: !record.saturated && !record.woke && !prev_saturated,
    }
}

/// The paper's analytic relative-error envelope at a division level:
/// one level-`d` sampling period (`2^d × T_min` grid quantization)
/// over the shortest inter-spike interval that reaches level `d`
/// (`θ_div(2^d − 1)` ticks), i.e. `2^d / (θ_div(2^d − 1)) ≈ 2/θ_div`.
/// Infinite at level 0, where the grid is `T_min` and the ISI can be
/// arbitrarily short.
pub fn relative_error_bound(theta_div: u32, division_level: u32) -> f64 {
    if division_level == 0 {
        return f64::INFINITY;
    }
    let m = 2f64.powi(division_level.min(63) as i32);
    m / (f64::from(theta_div) * (m - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    const T_MIN_PS: u64 = 66_000;

    fn record(index: u32, arrival_ps: u64, detection_ps: u64, ticks: u64) -> EventLineage {
        let mut r = EventLineage {
            index,
            address: 5,
            arrival: SimTime::from_ps(arrival_ps),
            detection: SimTime::from_ps(detection_ps),
            timestamp_ticks: ticks,
            saturated: false,
            division_level: 1,
            multiplier: 2,
            sampling_period: SimDuration::from_ps(2 * T_MIN_PS),
            woke: false,
            wake_penalty: SimDuration::ZERO,
            quantization_error_ticks: 0.0,
            ..EventLineage::captured(Capture {
                index,
                address: 5,
                arrival: SimTime::ZERO,
                detection: SimTime::ZERO,
                timestamp_ticks: 0,
                saturated: false,
                division_level: 0,
                multiplier: 1,
                sampling_period: SimDuration::from_ps(T_MIN_PS),
                woke: false,
                wake_penalty: SimDuration::ZERO,
                quantization_error_ticks: 0.0,
            })
        };
        r.set_ack_rise(SimTime::from_ps(detection_ps + 33_000));
        r.set_fifo_enqueue(SimTime::from_ps(detection_ps));
        r
    }

    #[test]
    fn decomposition_is_exact_per_event_and_in_total() {
        // Two events on a T_min-exact detection grid with small
        // alignments; the algebra must reproduce measured − true.
        let a = record(0, 10_000, 2 * T_MIN_PS, 2);
        let b = record(1, 500_000, 2 * T_MIN_PS + 8 * T_MIN_PS, 8);
        let budget = ErrorBudget::from_records(&[a, b], SimDuration::from_ps(T_MIN_PS));
        for row in &budget.rows {
            assert_eq!(row.causes.total_ps(), row.error_ps);
            assert_eq!(row.error_ps, row.measured_ps - row.true_interval_ps);
        }
        assert_eq!(
            budget.causes.total_ps(),
            budget.total_error_ps,
            "cause totals sum to the signed grand total"
        );
        // Telescoping check: Σ true_i = last arrival.
        let sum_true: i128 = budget.rows.iter().map(|r| r.true_interval_ps).sum();
        assert_eq!(sum_true, 500_000);
    }

    #[test]
    fn wake_and_saturation_route_into_their_buckets() {
        let mut woken = record(1, 1_000_000, 1_000_000 + 3 * T_MIN_PS, 4);
        woken.woke = true;
        woken.saturated = true;
        woken.wake_penalty = SimDuration::from_ps(2 * T_MIN_PS);
        let first = record(0, 0, T_MIN_PS, 1);
        let budget = ErrorBudget::from_records(&[first, woken], SimDuration::from_ps(T_MIN_PS));
        let row = &budget.rows[1];
        assert!(!row.clean);
        assert_eq!(row.causes.wake_ps, 2 * T_MIN_PS as i128);
        assert_eq!(row.causes.total_ps(), row.error_ps);
    }

    #[test]
    fn clean_events_respect_the_alignment_budget() {
        // Detection lags arrival by ≤ 2 periods here; sync_stages = 2
        // gives a 4-period budget per endpoint.
        let a = record(0, 0, 2 * T_MIN_PS, 2);
        let b = record(1, 20 * T_MIN_PS, 22 * T_MIN_PS, 20);
        let budget = ErrorBudget::from_records(&[a, b], SimDuration::from_ps(T_MIN_PS));
        assert!(budget.bound_violations(2).is_empty());
    }

    #[test]
    fn analytic_bound_matches_the_paper_envelope() {
        // Level 1 under θ = 64: 2/64 ≈ 3.1%.
        let b = relative_error_bound(64, 1);
        assert!((b - 2.0 / 64.0).abs() < 1e-12, "{b}");
        // Deeper levels tighten towards 1/θ.
        assert!(relative_error_bound(64, 3) < b);
        assert_eq!(relative_error_bound(64, 0), f64::INFINITY);
    }

    #[test]
    fn jsonl_round_trips_and_omits_absent_stages() {
        let mut log = LineageLog::new();
        let mut r = record(0, 10_000, 200_000, 3);
        r.set_transmitted(SimTime::from_ps(900_000), SimTime::from_ps(904_266));
        log.push(r);
        let mut dropped = record(1, 1_000_000, 1_200_000, 15);
        dropped.clear_ack_rise();
        dropped.fifo_enqueue_ps = UNSET_PS;
        dropped.drop_cause = DropCause::Overflow;
        log.push(dropped);

        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = crate::json::parse(lines[0]).expect("line parses");
        assert_eq!(first.get("drop_cause").and_then(Json::as_str), Some("delivered"));
        assert_eq!(first.get("i2s_end_ps").and_then(Json::as_f64), Some(904_266.0));
        let second = crate::json::parse(lines[1]).expect("line parses");
        assert_eq!(second.get("drop_cause").and_then(Json::as_str), Some("overflow"));
        assert!(second.get("ack_rise_ps").is_none(), "absent stages are omitted");
        assert!(second.get("fifo_enqueue_ps").is_none());
    }

    #[test]
    fn flow_events_join_the_span_tracks() {
        let mut log = LineageLog::new();
        let mut r = record(0, 10_000, 200_000, 3);
        r.i2s_end_ps = 904_266;
        log.push(r);
        log.push(record(1, 1_000_000, 1_200_000, 15)); // still in flight
        let flows = log.chrome_flow_events();
        // Event 0: start + step + finish; event 1: start + step only.
        assert_eq!(flows.len(), 5);
        let doc = format!("{{\"traceEvents\":[{}]}}", flows.join(","));
        let parsed = crate::json::parse(&doc).expect("flows are valid json");
        let events = parsed.get("traceEvents").and_then(Json::as_array).unwrap();
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("s"));
        assert_eq!(events[2].get("ph").and_then(Json::as_str), Some("f"));
        assert_eq!(events[2].get("bp").and_then(Json::as_str), Some("e"));
        assert_eq!(events[2].get("tid").and_then(Json::as_f64), Some(3.0), "i2s track");
    }

    #[test]
    fn latency_accessors() {
        let mut r = record(0, 10_000, 200_000, 3);
        r.set_fifo_dequeue(SimTime::from_ps(900_000));
        r.i2s_end_ps = 904_266;
        assert_eq!(r.ack_latency(), Some(SimDuration::from_ps(223_000)));
        assert_eq!(r.fifo_residency(), Some(SimDuration::from_ps(700_000)));
        assert_eq!(r.end_to_end_latency(), Some(SimDuration::from_ps(894_266)));
        r.drop_cause = DropCause::FrameSlip;
        assert_eq!(r.end_to_end_latency(), None, "slipped frames were not delivered");
    }
}
