//! Fault-injection campaigns: sweep fault rates over the DES
//! interface and measure how gracefully accuracy and power degrade.
//!
//! A campaign fixes one stimulus (a seeded Poisson train) and one
//! interface configuration, runs the fault-free baseline once, then
//! replays the identical stimulus under a [`FaultPlan`] per swept
//! fault rate. Because both the spike generator and the fault
//! injector are seeded, a campaign is a pure function of its inputs:
//! the same seeds produce bit-identical [`CampaignPoint`]s, which is
//! what makes regression curves trustworthy.
//!
//! The fidelity metric is the paper's own: the MCU-side
//! reconstruction's inter-spike-interval accuracy
//! ([`FidelityReport::accuracy`]), plus transit loss and the power
//! delta against the baseline.

use serde::{Deserialize, Serialize};

use aetr_aer::generator::{PoissonGenerator, SpikeSource};
use aetr_aer::spike::SpikeTrain;
use aetr_faults::{FaultPlan, FaultRates, InterfaceHealthReport, WatchdogConfig};
use aetr_sim::parallel::par_map;
use aetr_sim::time::{SimDuration, SimTime};

use crate::interface::{AerToI2sInterface, InterfaceConfig, InterfaceConfigError};
use crate::mcu::{FidelityReport, McuReceiver};

/// Which fault classes a campaign exercises at the swept rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultSurface {
    /// Handshake faults only (stuck `REQ`, lost `ACK`, malformed
    /// transactions).
    Protocol,
    /// Storage and link faults only (FIFO bit flips, I2S frame slips,
    /// CDC pointer upsets).
    Datapath,
    /// Every per-event fault class at once.
    All,
}

impl FaultSurface {
    /// The per-class rates for a swept per-event probability.
    pub fn rates(self, rate: f64) -> FaultRates {
        match self {
            FaultSurface::Protocol => FaultRates::protocol(rate),
            FaultSurface::Datapath => FaultRates::datapath(rate),
            FaultSurface::All => FaultRates {
                stuck_req: rate,
                lost_ack: rate,
                malformed: rate,
                wake_failure: rate,
                fifo_bit_flip: rate,
                i2s_frame_slip: rate,
                cdc_gray_upset: rate,
            },
        }
    }
}

impl std::str::FromStr for FaultSurface {
    type Err = String;

    fn from_str(s: &str) -> Result<FaultSurface, String> {
        match s {
            "protocol" => Ok(FaultSurface::Protocol),
            "datapath" => Ok(FaultSurface::Datapath),
            "all" => Ok(FaultSurface::All),
            other => Err(format!("unknown fault surface '{other}' (protocol|datapath|all)")),
        }
    }
}

/// Campaign stimulus and policy knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Interface under test.
    pub interface: InterfaceConfig,
    /// Mean sensor event rate (events per second).
    pub event_rate_hz: f64,
    /// Number of sensor channels in the stimulus.
    pub channels: u16,
    /// Stimulus length.
    pub duration: SimDuration,
    /// Spike-generator seed (stimulus is identical across points).
    pub train_seed: u64,
    /// Fault-injector seed.
    pub fault_seed: u64,
    /// Recovery policy armed for every faulted run.
    pub watchdog: WatchdogConfig,
    /// Fault classes exercised.
    pub surface: FaultSurface,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            interface: InterfaceConfig::prototype(),
            event_rate_hz: 50_000.0,
            channels: 64,
            duration: SimDuration::from_ms(10),
            train_seed: 7,
            fault_seed: 1,
            watchdog: WatchdogConfig::default(),
            surface: FaultSurface::All,
        }
    }
}

/// One measured point of a fault-rate sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignPoint {
    /// Swept per-event fault probability.
    pub fault_rate: f64,
    /// ISI accuracy of the MCU reconstruction (1.0 = perfect).
    pub accuracy: f64,
    /// Fraction of sensor events that never reached the MCU.
    pub loss_ratio: f64,
    /// Average power of the faulted run, in microwatts.
    pub power_uw: f64,
    /// Power relative to the fault-free baseline (1.0 = no overhead).
    pub power_ratio: f64,
    /// Fault/recovery counters of the faulted run.
    pub health: InterfaceHealthReport,
}

/// A complete campaign result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Fault-free accuracy (quantisation error only).
    pub baseline_accuracy: f64,
    /// Fault-free average power, in microwatts.
    pub baseline_power_uw: f64,
    /// One point per swept rate, in sweep order.
    pub points: Vec<CampaignPoint>,
}

/// The campaign runner.
///
/// # Examples
///
/// ```
/// use aetr::campaign::{CampaignConfig, FaultCampaign};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let campaign = FaultCampaign::new(CampaignConfig::default())?;
/// let result = campaign.run(&[0.0, 0.01]);
/// assert_eq!(result.points.len(), 2);
/// // A zero fault rate adds no power and loses nothing.
/// assert!((result.points[0].power_ratio - 1.0).abs() < 1e-12);
/// assert!(result.points[0].health.is_nominal());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FaultCampaign {
    config: CampaignConfig,
    interface: AerToI2sInterface,
    train: SpikeTrain,
    horizon: SimTime,
}

impl FaultCampaign {
    /// Builds the campaign: validates the interface and generates the
    /// (seeded, reused) stimulus.
    ///
    /// # Errors
    ///
    /// Returns [`InterfaceConfigError`] for an invalid interface
    /// configuration.
    pub fn new(config: CampaignConfig) -> Result<FaultCampaign, InterfaceConfigError> {
        let interface = AerToI2sInterface::new(config.interface)?;
        let horizon = SimTime::ZERO + config.duration;
        let train = PoissonGenerator::new(config.event_rate_hz, config.channels, config.train_seed)
            .generate(horizon);
        Ok(FaultCampaign { config, interface, train, horizon })
    }

    /// The stimulus replayed at every point.
    pub fn train(&self) -> &SpikeTrain {
        &self.train
    }

    /// Runs the baseline plus one faulted run per rate in
    /// `fault_rates`. Deterministic: same [`CampaignConfig`], same
    /// result, bit for bit.
    pub fn run(&self, fault_rates: &[f64]) -> CampaignResult {
        self.run_with_jobs(fault_rates, 1)
    }

    /// Like [`run`](Self::run), sharding the swept points over up to
    /// `jobs` worker threads.
    ///
    /// Every point derives its fault stream from the campaign seed and
    /// its own rate alone — no state flows between points — and
    /// [`par_map`] returns results in input order, so the result is
    /// bit-identical to [`run`](Self::run) for any `jobs`.
    pub fn run_with_jobs(&self, fault_rates: &[f64], jobs: usize) -> CampaignResult {
        let receiver = McuReceiver::new(self.config.interface.clock.base_sampling_period());
        let measure = |plan: &FaultPlan| -> (f64, f64, f64, InterfaceHealthReport) {
            let report = self.interface.run_with_faults(&self.train, self.horizon, plan);
            let reconstructed = receiver.receive_anchored(&report.i2s);
            let fidelity = FidelityReport::compare(&self.train, &reconstructed);
            (
                fidelity.accuracy(),
                fidelity.loss_ratio(),
                report.power.total.as_microwatts(),
                report.health,
            )
        };

        let nominal =
            FaultPlan::nominal(self.config.fault_seed).with_watchdog(self.config.watchdog);
        let (baseline_accuracy, _, baseline_power_uw, _) = measure(&nominal);

        let points = par_map(jobs, fault_rates, |_, &rate| {
            let plan = nominal.clone().with_rates(self.config.surface.rates(rate));
            let (accuracy, loss_ratio, power_uw, health) = measure(&plan);
            CampaignPoint {
                fault_rate: rate,
                accuracy,
                loss_ratio,
                power_uw,
                power_ratio: power_uw / baseline_power_uw,
                health,
            }
        });

        CampaignResult { baseline_accuracy, baseline_power_uw, points }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> CampaignConfig {
        CampaignConfig {
            event_rate_hz: 30_000.0,
            duration: SimDuration::from_ms(5),
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn identical_seeds_give_identical_campaigns() {
        let rates = [0.0, 1e-3, 1e-2, 0.1];
        let a = FaultCampaign::new(quick_config()).unwrap().run(&rates);
        let b = FaultCampaign::new(quick_config()).unwrap().run(&rates);
        assert_eq!(a, b, "a campaign is a pure function of its seeds");
    }

    #[test]
    fn zero_rate_point_matches_baseline() {
        let result = FaultCampaign::new(quick_config()).unwrap().run(&[0.0]);
        let p = &result.points[0];
        assert_eq!(p.accuracy, result.baseline_accuracy);
        assert_eq!(p.power_uw, result.baseline_power_uw);
        assert!(p.health.is_nominal());
    }

    #[test]
    fn heavier_faults_hurt_fidelity_monotonically_enough() {
        // Not strictly monotone point to point (faults are random),
        // but a heavy-fault run must lose more than a light one.
        let result = FaultCampaign::new(quick_config()).unwrap().run(&[1e-3, 0.3]);
        let light = &result.points[0];
        let heavy = &result.points[1];
        assert!(heavy.health.faults_injected() > light.health.faults_injected());
        assert!(heavy.loss_ratio >= light.loss_ratio, "heavy {heavy:?} vs light {light:?}");
    }

    #[test]
    fn parallel_campaign_is_bit_identical_to_sequential() {
        let rates = [0.0, 1e-3, 1e-2, 0.1];
        let campaign = FaultCampaign::new(quick_config()).unwrap();
        let sequential = campaign.run_with_jobs(&rates, 1);
        for jobs in [2, 4] {
            assert_eq!(
                campaign.run_with_jobs(&rates, jobs),
                sequential,
                "jobs={jobs} must reproduce the sequential campaign bit for bit"
            );
        }
    }

    #[test]
    fn surfaces_select_their_fault_classes() {
        let protocol = FaultSurface::Protocol.rates(0.5);
        assert!(protocol.fifo_bit_flip == 0.0 && protocol.lost_ack == 0.5);
        let datapath = FaultSurface::Datapath.rates(0.5);
        assert!(datapath.lost_ack == 0.0 && datapath.fifo_bit_flip == 0.5);
        assert_eq!("all".parse::<FaultSurface>().unwrap(), FaultSurface::All);
        assert!("bogus".parse::<FaultSurface>().is_err());
    }
}
