//! Spike-train feature extraction.
//!
//! The downstream "information" in time-to-information extraction: a
//! spike train is summarised as a per-address activity vector — how
//! much each cochlea channel (or DVS pixel group) fired, normalised to
//! a unit profile — plus coarse temporal statistics. These features
//! are exactly what survives (or doesn't) the AETR quantization, so
//! classifying on them measures the interface's information fidelity
//! directly.

use serde::{Deserialize, Serialize};

use aetr_aer::spike::SpikeTrain;

/// A fixed-length feature vector extracted from a spike train.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    /// Normalised per-bucket activity profile (sums to 1 unless the
    /// train was empty).
    pub profile: Vec<f64>,
    /// Total event count (log-compressed when comparing).
    pub event_count: usize,
    /// Coefficient of variation of the ISIs (temporal texture).
    pub isi_cv: f64,
}

/// Feature extraction configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Number of address buckets (addresses are folded modulo-free by
    /// integer division so neighbouring addresses share a bucket).
    pub buckets: usize,
    /// Address-space size being bucketed (e.g. 256 for a 64-channel ×
    /// 4-neuron cochlea ear).
    pub address_space: usize,
}

impl FeatureConfig {
    /// Buckets matching the DAS1 cochlea's 64 channels (4 neurons per
    /// channel fold into one bucket).
    pub fn das1_channels() -> FeatureConfig {
        FeatureConfig { buckets: 64, address_space: 256 }
    }
}

impl Default for FeatureConfig {
    fn default() -> Self {
        Self::das1_channels()
    }
}

/// Extracts features from a train.
///
/// # Panics
///
/// Panics on zero buckets or a zero address space.
///
/// # Examples
///
/// ```
/// use aetr_apps::features::{extract, FeatureConfig};
/// use aetr_aer::generator::{PoissonGenerator, SpikeSource};
/// use aetr_sim::time::SimTime;
///
/// let train = PoissonGenerator::new(50_000.0, 256, 1).generate(SimTime::from_ms(50));
/// let f = extract(&train, &FeatureConfig::das1_channels());
/// assert_eq!(f.profile.len(), 64);
/// assert!((f.profile.iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// ```
pub fn extract(train: &SpikeTrain, config: &FeatureConfig) -> FeatureVector {
    assert!(config.buckets > 0, "need at least one bucket");
    assert!(config.address_space > 0, "address space must be non-zero");
    let per_bucket = config.address_space.div_ceil(config.buckets);
    let mut profile = vec![0.0f64; config.buckets];
    for s in train {
        let bucket = (s.addr.value() as usize / per_bucket).min(config.buckets - 1);
        profile[bucket] += 1.0;
    }
    let total: f64 = profile.iter().sum();
    if total > 0.0 {
        for p in &mut profile {
            *p /= total;
        }
    }
    let isi_cv =
        aetr_aer::isi::IsiStats::of(train).map(|s| s.coefficient_of_variation()).unwrap_or(0.0);
    FeatureVector { profile, event_count: train.len(), isi_cv }
}

/// Cosine distance between two profiles (`0` identical direction, `1`
/// orthogonal). Empty profiles are maximally distant from non-empty
/// ones and identical to each other.
pub fn cosine_distance(a: &FeatureVector, b: &FeatureVector) -> f64 {
    let dot: f64 = a.profile.iter().zip(&b.profile).map(|(x, y)| x * y).sum();
    let na: f64 = a.profile.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.profile.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 && nb == 0.0 {
        0.0
    } else if na == 0.0 || nb == 0.0 {
        1.0
    } else {
        (1.0 - dot / (na * nb)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aetr_aer::address::Address;
    use aetr_aer::spike::Spike;
    use aetr_sim::time::SimTime;

    fn train_on_addrs(addrs: &[u16]) -> SpikeTrain {
        SpikeTrain::from_sorted(
            addrs
                .iter()
                .enumerate()
                .map(|(i, &a)| {
                    Spike::new(SimTime::from_us(i as u64 * 10), Address::new(a).unwrap())
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn buckets_fold_neighbouring_addresses() {
        // Addresses 0..3 are channel 0's four neurons: one bucket.
        let f = extract(&train_on_addrs(&[0, 1, 2, 3]), &FeatureConfig::das1_channels());
        assert_eq!(f.profile[0], 1.0);
        assert!(f.profile[1..].iter().all(|&p| p == 0.0));
        assert_eq!(f.event_count, 4);
    }

    #[test]
    fn profile_is_normalised() {
        let f = extract(&train_on_addrs(&[0, 4, 4, 8]), &FeatureConfig::das1_channels());
        assert!((f.profile.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((f.profile[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_train_yields_zero_profile() {
        let f = extract(&SpikeTrain::new(), &FeatureConfig::das1_channels());
        assert!(f.profile.iter().all(|&p| p == 0.0));
        assert_eq!(f.event_count, 0);
        assert_eq!(f.isi_cv, 0.0);
    }

    #[test]
    fn cosine_distance_basics() {
        let a = extract(&train_on_addrs(&[0, 0, 0]), &FeatureConfig::das1_channels());
        let b = extract(&train_on_addrs(&[0, 0]), &FeatureConfig::das1_channels());
        let c = extract(&train_on_addrs(&[100, 100]), &FeatureConfig::das1_channels());
        assert!(cosine_distance(&a, &b) < 1e-12, "same direction");
        assert!((cosine_distance(&a, &c) - 1.0).abs() < 1e-12, "disjoint channels");
        let empty = extract(&SpikeTrain::new(), &FeatureConfig::das1_channels());
        assert_eq!(cosine_distance(&a, &empty), 1.0);
        assert_eq!(cosine_distance(&empty, &empty), 0.0);
    }

    #[test]
    fn out_of_space_addresses_clamp_to_last_bucket() {
        let cfg = FeatureConfig { buckets: 4, address_space: 16 };
        let f = extract(&train_on_addrs(&[1000]), &cfg);
        assert_eq!(f.profile[3], 1.0);
    }
}
