//! Runtime configuration register file.
//!
//! "A configuration bus, accessible by the outside through SPI, is used
//! to modify the interface configuration registers at runtime"
//! (paper §4): `θ_div` and `N_div` can be reloaded on the fly to trade
//! accuracy for power, and the FIFO watermark tunes batching.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use aetr_clockgen::config::{ClockGenConfig, DivisionPolicy};

/// Register addresses (7-bit SPI address space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Register {
    /// Identification word, read-only (`0xAE72`).
    Id = 0x00,
    /// Control: bit 0 enables the interface.
    Ctrl = 0x01,
    /// Cycles between clock divisions (`θ_div`).
    ThetaDiv = 0x02,
    /// Divisions before clock shutdown (`N_div`).
    NDiv = 0x03,
    /// Division policy (0 recursive, 1 divide-only, 2 never, 3 linear).
    Policy = 0x04,
    /// FIFO drain watermark, in events.
    FifoWatermark = 0x05,
    /// Status, read-only: live FIFO occupancy.
    Status = 0x06,
    /// Events processed since reset, read-only.
    EventCount = 0x07,
}

impl Register {
    /// Decodes a raw 7-bit register address.
    pub fn from_addr(addr: u8) -> Option<Register> {
        Some(match addr {
            0x00 => Register::Id,
            0x01 => Register::Ctrl,
            0x02 => Register::ThetaDiv,
            0x03 => Register::NDiv,
            0x04 => Register::Policy,
            0x05 => Register::FifoWatermark,
            0x06 => Register::Status,
            0x07 => Register::EventCount,
            _ => return None,
        })
    }

    /// `true` if host writes are rejected.
    pub fn is_read_only(self) -> bool {
        matches!(self, Register::Id | Register::Status | Register::EventCount)
    }
}

/// The identification word returned by [`Register::Id`].
pub const ID_WORD: u32 = 0xAE72;

/// Errors from register accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegisterError {
    /// The 7-bit address does not decode to a register.
    UnknownAddress {
        /// Raw address.
        addr: u8,
    },
    /// Write to a read-only register.
    ReadOnly {
        /// The register.
        register: Register,
    },
    /// The written value violates the register's constraints.
    InvalidValue {
        /// The register.
        register: Register,
        /// The rejected value.
        value: u32,
    },
}

impl fmt::Display for RegisterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegisterError::UnknownAddress { addr } => {
                write!(f, "no register at address 0x{addr:02x}")
            }
            RegisterError::ReadOnly { register } => {
                write!(f, "register {register:?} is read-only")
            }
            RegisterError::InvalidValue { register, value } => {
                write!(f, "value {value} is invalid for register {register:?}")
            }
        }
    }
}

impl Error for RegisterError {}

/// The configuration register file.
///
/// # Examples
///
/// ```
/// use aetr::config_bus::{Register, RegisterFile};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut regs = RegisterFile::new();
/// regs.write(Register::ThetaDiv, 32)?;
/// assert_eq!(regs.read(Register::ThetaDiv), 32);
/// assert_eq!(regs.read(Register::Id), aetr::config_bus::ID_WORD);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterFile {
    ctrl: u32,
    theta_div: u32,
    n_div: u32,
    policy: u32,
    fifo_watermark: u32,
    status: u32,
    event_count: u32,
}

impl RegisterFile {
    /// Creates a register file holding the prototype defaults.
    pub fn new() -> RegisterFile {
        RegisterFile::from_config(&ClockGenConfig::prototype(), 1_150)
    }

    /// Builds the register file view of an existing configuration.
    pub fn from_config(config: &ClockGenConfig, fifo_watermark: u32) -> RegisterFile {
        RegisterFile {
            ctrl: 1,
            theta_div: config.theta_div,
            n_div: config.n_div,
            policy: policy_code(config.policy),
            fifo_watermark,
            status: 0,
            event_count: 0,
        }
    }

    /// Reads a register.
    pub fn read(&self, register: Register) -> u32 {
        match register {
            Register::Id => ID_WORD,
            Register::Ctrl => self.ctrl,
            Register::ThetaDiv => self.theta_div,
            Register::NDiv => self.n_div,
            Register::Policy => self.policy,
            Register::FifoWatermark => self.fifo_watermark,
            Register::Status => self.status,
            Register::EventCount => self.event_count,
        }
    }

    /// Writes a register, validating the value.
    ///
    /// # Errors
    ///
    /// Returns [`RegisterError`] for read-only targets or out-of-range
    /// values (`θ_div < 2`, `N_div > 20`, unknown policy codes).
    pub fn write(&mut self, register: Register, value: u32) -> Result<(), RegisterError> {
        if register.is_read_only() {
            return Err(RegisterError::ReadOnly { register });
        }
        let invalid = RegisterError::InvalidValue { register, value };
        match register {
            Register::Ctrl => self.ctrl = value & 1,
            Register::ThetaDiv => {
                if !(2..=65_536).contains(&value) {
                    return Err(invalid);
                }
                self.theta_div = value;
            }
            Register::NDiv => {
                if value > 20 {
                    return Err(invalid);
                }
                self.n_div = value;
            }
            Register::Policy => {
                if decode_policy(value).is_none() {
                    return Err(invalid);
                }
                self.policy = value;
            }
            Register::FifoWatermark => {
                if value == 0 {
                    return Err(invalid);
                }
                self.fifo_watermark = value;
            }
            Register::Id | Register::Status | Register::EventCount => unreachable!(),
        }
        Ok(())
    }

    /// Hardware-side status update (FIFO occupancy).
    pub fn set_status(&mut self, fifo_occupancy: u32) {
        self.status = fifo_occupancy;
    }

    /// Hardware-side event counter update.
    pub fn set_event_count(&mut self, count: u32) {
        self.event_count = count;
    }

    /// `true` when the interface is enabled (CTRL bit 0).
    pub fn is_enabled(&self) -> bool {
        self.ctrl & 1 != 0
    }

    /// The FIFO watermark currently programmed.
    pub fn fifo_watermark(&self) -> u32 {
        self.fifo_watermark
    }

    /// Applies the programmed clocking fields onto a base configuration.
    pub fn apply_to(&self, base: &ClockGenConfig) -> ClockGenConfig {
        ClockGenConfig {
            theta_div: self.theta_div,
            n_div: self.n_div,
            policy: decode_policy(self.policy).expect("policy validated on write"),
            ..*base
        }
    }
}

impl Default for RegisterFile {
    fn default() -> Self {
        Self::new()
    }
}

fn policy_code(policy: DivisionPolicy) -> u32 {
    match policy {
        DivisionPolicy::Recursive => 0,
        DivisionPolicy::DivideOnly => 1,
        DivisionPolicy::Never => 2,
        DivisionPolicy::Linear => 3,
    }
}

fn decode_policy(code: u32) -> Option<DivisionPolicy> {
    Some(match code {
        0 => DivisionPolicy::Recursive,
        1 => DivisionPolicy::DivideOnly,
        2 => DivisionPolicy::Never,
        3 => DivisionPolicy::Linear,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_mirror_prototype() {
        let regs = RegisterFile::new();
        assert_eq!(regs.read(Register::ThetaDiv), 64);
        assert_eq!(regs.read(Register::NDiv), 3);
        assert_eq!(regs.read(Register::Policy), 0);
        assert!(regs.is_enabled());
    }

    #[test]
    fn write_read_roundtrip() {
        let mut regs = RegisterFile::new();
        regs.write(Register::ThetaDiv, 16).unwrap();
        regs.write(Register::NDiv, 7).unwrap();
        regs.write(Register::Policy, 2).unwrap();
        let cfg = regs.apply_to(&ClockGenConfig::prototype());
        assert_eq!(cfg.theta_div, 16);
        assert_eq!(cfg.n_div, 7);
        assert_eq!(cfg.policy, DivisionPolicy::Never);
        cfg.validate().unwrap();
    }

    #[test]
    fn read_only_registers_reject_writes() {
        let mut regs = RegisterFile::new();
        for r in [Register::Id, Register::Status, Register::EventCount] {
            assert_eq!(regs.write(r, 5), Err(RegisterError::ReadOnly { register: r }));
        }
        // But hardware-side setters work.
        regs.set_status(42);
        regs.set_event_count(7);
        assert_eq!(regs.read(Register::Status), 42);
        assert_eq!(regs.read(Register::EventCount), 7);
    }

    #[test]
    fn invalid_values_rejected() {
        let mut regs = RegisterFile::new();
        assert!(matches!(
            regs.write(Register::ThetaDiv, 1),
            Err(RegisterError::InvalidValue { .. })
        ));
        assert!(matches!(regs.write(Register::NDiv, 21), Err(RegisterError::InvalidValue { .. })));
        assert!(matches!(regs.write(Register::Policy, 9), Err(RegisterError::InvalidValue { .. })));
        assert!(matches!(
            regs.write(Register::FifoWatermark, 0),
            Err(RegisterError::InvalidValue { .. })
        ));
        // State unchanged after rejections.
        assert_eq!(regs.read(Register::ThetaDiv), 64);
    }

    #[test]
    fn address_decoding() {
        assert_eq!(Register::from_addr(0x02), Some(Register::ThetaDiv));
        assert_eq!(Register::from_addr(0x7F), None);
        let e = RegisterError::UnknownAddress { addr: 0x7F };
        assert!(e.to_string().contains("0x7f"));
    }

    #[test]
    fn ctrl_masks_to_one_bit() {
        let mut regs = RegisterFile::new();
        regs.write(Register::Ctrl, 0xFFFF_FFFE).unwrap();
        assert!(!regs.is_enabled());
        regs.write(Register::Ctrl, 3).unwrap();
        assert!(regs.is_enabled());
        assert_eq!(regs.read(Register::Ctrl), 1);
    }
}
