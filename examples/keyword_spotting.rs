//! Keyword spotting through the full interface: does the "information"
//! in time-to-information extraction actually survive?
//!
//! Three synthetic voice commands are classified (a) on the raw
//! cochlea stream and (b) after AER→AETR quantization and MCU-side
//! reconstruction, at several interface configurations. The accuracy
//! gap *is* the information lost by the interface.
//!
//! ```sh
//! cargo run --release -p aetr --example keyword_spotting
//! ```

use aetr_apps::keyword::{run_experiment, Pipeline};
use aetr_clockgen::config::{ClockGenConfig, DivisionPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train_n = 4;
    let test_n = 5;
    println!(
        "vocabulary: open / stop / left — {train_n} training + {test_n} test instances each\n"
    );

    let raw = run_experiment(Pipeline::Raw, &ClockGenConfig::prototype(), train_n, test_n)?;
    println!("raw sensor stream:            accuracy {:.0}%", raw.accuracy() * 100.0);

    for (name, clock) in [
        ("prototype (θ=64, N=3)", ClockGenConfig::prototype()),
        ("aggressive (θ=16, N=3)", ClockGenConfig::prototype().with_theta_div(16)),
        ("no-division baseline", ClockGenConfig::prototype().with_policy(DivisionPolicy::Never)),
    ] {
        let eval = run_experiment(Pipeline::Quantized, &clock, train_n, test_n)?;
        println!("through interface, {name:<24} accuracy {:.0}%", eval.accuracy() * 100.0);
    }

    println!(
        "\nreading: the energy-proportional interface preserves the classification\n\
         information of the spike stream — the accuracy through the prototype\n\
         configuration matches the raw stream, at a fraction of the power."
    );
    Ok(())
}
