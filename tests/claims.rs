//! The paper's headline claims, asserted as tests against the
//! simulated system. Each test cites the claim it checks.

use aetr::quantizer::{isi_error_samples, quantize_train, to_power_activity};
use aetr_aer::generator::{LfsrGenerator, PoissonGenerator, SpikeSource};
use aetr_aer::handshake::CAVIAR_EVENT_BUDGET;
use aetr_aer::spike::SpikeTrain;
use aetr_clockgen::config::{ClockGenConfig, DivisionPolicy};
use aetr_clockgen::engine::SamplingEngine;
use aetr_clockgen::segments::SegmentTable;
use aetr_power::model::PowerModel;
use aetr_sim::time::{SimDuration, SimTime};

fn power_at(config: &ClockGenConfig, rate_hz: f64, seed: u32) -> f64 {
    let secs = (2_000.0 / rate_hz).max(0.5);
    let horizon = SimTime::ZERO + SimDuration::from_secs_f64(secs);
    let train = LfsrGenerator::new(rate_hz, seed).generate(horizon);
    let out = quantize_train(config, &train, horizon);
    PowerModel::igloo_nano().evaluate(&out.activity).total.as_microwatts()
}

/// Abstract: "consuming less than 4.5 mW under a 550 kevt/s spike rate
/// (i.e. a noisy environment)".
#[test]
fn claim_power_ceiling_at_550kevts() {
    let uw = power_at(&ClockGenConfig::prototype(), 550_000.0, 1);
    assert!(uw < 4_600.0, "power at 550 kevt/s: {uw} uW");
    assert!(uw > 4_000.0, "suspiciously low power at 550 kevt/s: {uw} uW");
}

/// Abstract: "down to 50 uW in absence of spikes".
#[test]
fn claim_idle_floor_50uw() {
    let out =
        quantize_train(&ClockGenConfig::prototype(), &SpikeTrain::new(), SimTime::from_secs(1));
    let uw = PowerModel::igloo_nano().evaluate(&out.activity).total.as_microwatts();
    assert!((49.0..55.0).contains(&uw), "idle power {uw} uW");
}

/// §6: "scales from 4.5 mW at a 550 kevt/s rate down to slightly more
/// than 50 uW at rates lower than 10 evt/s (a 90x factor)".
#[test]
fn claim_90x_energy_proportionality() {
    let proto = ClockGenConfig::prototype();
    let high = power_at(&proto, 550_000.0, 2);
    let low = power_at(&proto, 10.0, 3);
    let factor = high / low;
    assert!(factor > 60.0, "energy-proportionality factor only {factor:.0}x");
    assert!(low < 80.0, "near-idle power {low} uW should sit just above the 50 uW floor");
}

/// §6: "a naive constant clock methodology is stuck to the same 4.5 mW
/// power regardless of the event rate".
#[test]
fn claim_naive_baseline_is_flat() {
    let naive = ClockGenConfig::prototype().with_policy(DivisionPolicy::Never);
    let at_low = power_at(&naive, 100.0, 4);
    let at_high = power_at(&naive, 500_000.0, 5);
    // Only the tiny per-event term differs: within ~10%.
    assert!(
        (at_high - at_low).abs() / at_high < 0.1,
        "naive power varies: {at_low} vs {at_high} uW"
    );
    assert!(at_low > 4_000.0, "naive floor {at_low} uW");
}

/// Abstract: "keeping accuracy above 97% on timestamps"; §6: "accuracy
/// reduction can be kept bounded below 3%, and on average it is even
/// smaller".
#[test]
fn claim_97_percent_accuracy_in_active_region() {
    let train = PoissonGenerator::new(120_000.0, 64, 6).generate(SimTime::from_ms(200));
    let out = quantize_train(&ClockGenConfig::prototype(), &train, SimTime::from_ms(200));
    let samples = isi_error_samples(&out);
    let mean: f64 = samples.iter().map(|s| s.relative_error()).sum::<f64>() / samples.len() as f64;
    assert!(mean < 0.03, "mean relative error {mean}");
    let median = {
        let mut errs: Vec<f64> = samples.iter().map(|s| s.relative_error()).collect();
        errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        errs[errs.len() / 2]
    };
    assert!(median < 0.01, "median error {median} — 'on average it is even smaller'");
}

/// §5: "inter-spike time of 130 ns or more can be sensed by the
/// interface; more than enough to respect ... CAVIAR, which requires
/// each event to be completed within 700 ns".
#[test]
fn claim_min_interval_and_caviar_headroom() {
    let cfg = ClockGenConfig::prototype();
    let min = cfg.min_resolvable_interval();
    assert!(min <= SimDuration::from_ns(140), "min resolvable interval {min}");
    assert!(min >= SimDuration::from_ns(120), "min resolvable interval {min}");
    assert!(CAVIAR_EVENT_BUDGET > min * 5, "CAVIAR headroom");
}

/// §5.2: "the time to recover from the off-state is in the order of
/// 100 ns; which is comparable with a single clock period at the max
/// freq".
#[test]
fn claim_wake_latency_one_period() {
    let cfg = ClockGenConfig::prototype();
    let wake = cfg.ring.wake_latency;
    let period = cfg.base_sampling_period();
    assert!(wake >= period / 2 && wake <= period * 3, "wake {wake} vs period {period}");

    // And the wake actually bounds the acquisition delay of the event
    // that caused it.
    let mut engine = SamplingEngine::new(&cfg);
    let table = SegmentTable::new(&cfg);
    let request = SimTime::ZERO + table.shutdown_offset().unwrap() + SimDuration::from_ms(1);
    let ev = engine.process(request);
    assert!(ev.woke_clock);
    assert_eq!(ev.detection - ev.request, wake + period);
}

/// §5.2: "we measured a reduction in power consumption up to 55% in the
/// active region" — isolating the division effect (no shutdown).
#[test]
fn claim_55_percent_division_saving() {
    let divide_only = ClockGenConfig::prototype().with_policy(DivisionPolicy::DivideOnly);
    let naive = ClockGenConfig::prototype().with_policy(DivisionPolicy::Never);
    let saving = 1.0 - power_at(&divide_only, 30_000.0, 7) / power_at(&naive, 30_000.0, 8);
    assert!(saving > 0.45, "division-only saving {:.0}%", saving * 100.0);
}

/// §5.2 (Fig. 8 discussion): "when the event rate drops below ~1 kevt/s
/// the clock is often shut down completely, boosting efficiency up to
/// near ideal power consumption".
#[test]
fn claim_near_ideal_at_low_rates() {
    let proto = ClockGenConfig::prototype();
    let model = PowerModel::igloo_nano();
    let ideal = aetr_power::ideal::IdealModel::fit_from_high_activity(
        aetr_power::units::Power::from_microwatts(power_at(&proto, 550_000.0, 9)),
        550_000.0,
        model.static_power,
    );
    let measured = power_at(&proto, 100.0, 10);
    let gap = ideal.proportionality_gap(aetr_power::units::Power::from_microwatts(measured), 100.0);
    assert!(gap < 2.0, "gap to ideal at 100 evt/s: {gap:.2}x");
}

/// §3/§4: the maximum measurable interval is set by θ_div and N_div —
/// "these two parameters can be used as two different knobs".
#[test]
fn claim_knobs_set_max_measurable_interval() {
    let t = |theta: u32, n: u32| {
        SegmentTable::new(&ClockGenConfig::prototype().with_theta_div(theta).with_n_div(n))
            .max_measurable()
            .unwrap()
    };
    // Doubling θ_div doubles the range; one more division roughly
    // doubles it too (2^(N+1)-1 factor).
    assert_eq!(t(128, 3), t(64, 3) * 2);
    let ratio = t(64, 4).as_ps() as f64 / t(64, 3).as_ps() as f64;
    assert!((ratio - 31.0 / 15.0).abs() < 1e-9);

    // Activity accounting confirms the quantizer respects them.
    let mut engine = SamplingEngine::new(&ClockGenConfig::prototype());
    let _ = engine.process(SimTime::from_ms(5));
    let activity = to_power_activity(engine.report());
    assert_eq!(activity.wake_count, 1, "a 5 ms gap must wake the clock (range is ~64 us)");
}
