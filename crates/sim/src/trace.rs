//! Signal tracing: a lightweight waveform recorder.
//!
//! Components register named signals with a [`Tracer`] and record value
//! changes as simulation time advances. Traces can be inspected
//! programmatically (the Fig. 2 harness checks the divided-clock edge
//! pattern this way) or dumped to an industry-standard VCD file via
//! [`crate::vcd`] for viewing in GTKWave & co.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// The value carried by a traced signal at some instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceValue {
    /// A single-bit signal (clock, REQ, ACK, SLEEP, ...).
    Bit(bool),
    /// A multi-bit bus value (addresses, counters). The recorded width
    /// comes from the signal declaration, not the value.
    Vector(u64),
    /// An analog/report quantity (e.g. instantaneous power in mW).
    Real(f64),
}

impl fmt::Display for TraceValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceValue::Bit(b) => write!(f, "{}", u8::from(*b)),
            TraceValue::Vector(v) => write!(f, "0x{v:x}"),
            TraceValue::Real(r) => write!(f, "{r}"),
        }
    }
}

/// The declared shape of a signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SignalKind {
    /// One bit.
    Bit,
    /// A bus of the given width (1..=64 bits).
    Vector {
        /// Bus width in bits.
        width: u8,
    },
    /// A real-valued quantity.
    Real,
}

/// Identifier of a declared signal, returned by the `declare_*` methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SignalId(usize);

/// A signal declaration: name, hierarchical scope, and kind.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignalDecl {
    /// Signal name, e.g. `"clk_sample"`.
    pub name: String,
    /// Dot-separated hierarchical scope, e.g. `"interface.clockgen"`.
    /// Empty string means top level.
    pub scope: String,
    /// Bit / vector / real.
    pub kind: SignalKind,
}

/// One recorded transition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Change {
    /// When the signal changed.
    pub time: SimTime,
    /// Which signal changed.
    pub signal: SignalId,
    /// The new value.
    pub value: TraceValue,
}

/// A waveform recorder.
///
/// # Examples
///
/// ```
/// use aetr_sim::time::SimTime;
/// use aetr_sim::trace::{TraceValue, Tracer};
///
/// let mut tracer = Tracer::new();
/// let clk = tracer.declare_bit("clk", "top");
/// tracer.record(SimTime::from_ns(0), clk, TraceValue::Bit(false));
/// tracer.record(SimTime::from_ns(5), clk, TraceValue::Bit(true));
/// // Re-recording the same value is a no-op:
/// tracer.record(SimTime::from_ns(6), clk, TraceValue::Bit(true));
/// assert_eq!(tracer.changes().len(), 2);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Tracer {
    signals: Vec<SignalDecl>,
    last: Vec<Option<TraceValue>>,
    last_time: Vec<Option<SimTime>>,
    changes: Vec<Change>,
}

impl Tracer {
    /// Creates an empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a single-bit signal under the given scope.
    pub fn declare_bit(&mut self, name: &str, scope: &str) -> SignalId {
        self.declare(name, scope, SignalKind::Bit)
    }

    /// Declares a bus signal of `width` bits under the given scope.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn declare_vector(&mut self, name: &str, scope: &str, width: u8) -> SignalId {
        assert!((1..=64).contains(&width), "vector width must be 1..=64, got {width}");
        self.declare(name, scope, SignalKind::Vector { width })
    }

    /// Declares a real-valued signal under the given scope.
    pub fn declare_real(&mut self, name: &str, scope: &str) -> SignalId {
        self.declare(name, scope, SignalKind::Real)
    }

    fn declare(&mut self, name: &str, scope: &str, kind: SignalKind) -> SignalId {
        let id = SignalId(self.signals.len());
        self.signals.push(SignalDecl { name: name.to_owned(), scope: scope.to_owned(), kind });
        self.last.push(None);
        self.last_time.push(None);
        id
    }

    /// Records a value change. Changes with the same value as the last
    /// recorded one for the signal are dropped, so callers can record
    /// unconditionally.
    ///
    /// # Panics
    ///
    /// Panics if a recorded value's variant does not match the signal's
    /// declared [`SignalKind`], or if `time` precedes the latest change
    /// already recorded for this signal (trace time is monotonic).
    pub fn record(&mut self, time: SimTime, signal: SignalId, value: TraceValue) {
        let decl = &self.signals[signal.0];
        let matches_kind = matches!(
            (&decl.kind, &value),
            (SignalKind::Bit, TraceValue::Bit(_))
                | (SignalKind::Vector { .. }, TraceValue::Vector(_))
                | (SignalKind::Real, TraceValue::Real(_))
        );
        assert!(
            matches_kind,
            "signal {}.{} declared {:?} but recorded {:?}",
            decl.scope, decl.name, decl.kind, value
        );
        if self.last[signal.0] == Some(value) {
            return;
        }
        if let Some(prev) = self.last_time[signal.0] {
            assert!(
                time >= prev,
                "trace for {}.{} moved backwards: {} after {}",
                decl.scope,
                decl.name,
                time,
                prev
            );
        }
        self.last[signal.0] = Some(value);
        self.last_time[signal.0] = Some(time);
        self.changes.push(Change { time, signal, value });
    }

    /// All declared signals, in declaration order (index == `SignalId`).
    pub fn signals(&self) -> &[SignalDecl] {
        &self.signals
    }

    /// Declaration of one signal.
    pub fn signal(&self, id: SignalId) -> &SignalDecl {
        &self.signals[id.0]
    }

    /// All recorded changes, in record order.
    pub fn changes(&self) -> &[Change] {
        &self.changes
    }

    /// Iterator over the changes of a single signal.
    pub fn changes_of(&self, id: SignalId) -> impl Iterator<Item = &Change> {
        self.changes.iter().filter(move |c| c.signal == id)
    }

    /// The edge times (any value change) of a single-bit signal,
    /// restricted to changes *to* the given level.
    ///
    /// Useful to extract clock rising edges:
    /// `tracer.edges_to(clk, true)`.
    pub fn edges_to(&self, id: SignalId, level: bool) -> Vec<SimTime> {
        self.changes_of(id)
            .filter(|c| matches!(c.value, TraceValue::Bit(b) if b == level))
            .map(|c| c.time)
            .collect()
    }

    /// Numeric index of a signal id (stable, for external tables).
    pub fn index_of(&self, id: SignalId) -> usize {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declares_and_records() {
        let mut t = Tracer::new();
        let req = t.declare_bit("req", "aer");
        let addr = t.declare_vector("addr", "aer", 10);
        t.record(SimTime::from_ns(1), req, TraceValue::Bit(true));
        t.record(SimTime::from_ns(1), addr, TraceValue::Vector(0x2a));
        assert_eq!(t.changes().len(), 2);
        assert_eq!(t.signal(req).name, "req");
        assert_eq!(t.signal(addr).kind, SignalKind::Vector { width: 10 });
    }

    #[test]
    fn deduplicates_unchanged_values() {
        let mut t = Tracer::new();
        let s = t.declare_real("power", "");
        t.record(SimTime::from_ns(0), s, TraceValue::Real(1.0));
        t.record(SimTime::from_ns(5), s, TraceValue::Real(1.0));
        t.record(SimTime::from_ns(9), s, TraceValue::Real(2.0));
        assert_eq!(t.changes().len(), 2);
    }

    #[test]
    fn edges_to_extracts_clock_edges() {
        let mut t = Tracer::new();
        let clk = t.declare_bit("clk", "");
        for i in 0..6 {
            t.record(SimTime::from_ns(i * 10), clk, TraceValue::Bit(i % 2 == 1));
        }
        assert_eq!(
            t.edges_to(clk, true),
            vec![SimTime::from_ns(10), SimTime::from_ns(30), SimTime::from_ns(50)]
        );
    }

    #[test]
    fn changes_of_filters_by_signal() {
        let mut t = Tracer::new();
        let a = t.declare_bit("a", "");
        let b = t.declare_bit("b", "");
        t.record(SimTime::from_ns(1), a, TraceValue::Bit(true));
        t.record(SimTime::from_ns(2), b, TraceValue::Bit(true));
        t.record(SimTime::from_ns(3), a, TraceValue::Bit(false));
        assert_eq!(t.changes_of(a).count(), 2);
        assert_eq!(t.changes_of(b).count(), 1);
    }

    #[test]
    #[should_panic(expected = "declared")]
    fn kind_mismatch_panics() {
        let mut t = Tracer::new();
        let s = t.declare_bit("clk", "");
        t.record(SimTime::ZERO, s, TraceValue::Vector(3));
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn non_monotonic_record_panics() {
        let mut t = Tracer::new();
        let s = t.declare_bit("clk", "");
        t.record(SimTime::from_ns(10), s, TraceValue::Bit(true));
        t.record(SimTime::from_ns(5), s, TraceValue::Bit(false));
    }

    #[test]
    #[should_panic(expected = "vector width")]
    fn zero_width_vector_panics() {
        let mut t = Tracer::new();
        t.declare_vector("bus", "", 0);
    }
}
